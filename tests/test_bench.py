"""Hot-path benchmark harness and profiling-flag CLI tests."""

from __future__ import annotations

import json

import pytest

from repro.analysis.bench import (
    DEFAULT_WORKLOADS,
    MODES,
    SCHEMA,
    main,
    run_benchmark,
    validate_bench,
)

#: One tiny workload keeps the CLI round-trips fast.
TINY = ["--workloads", "vectoradd", "--quick"]


class TestRunBenchmark:
    def test_matrix_shape_and_schema(self):
        data = run_benchmark(workloads=("vectoradd",), quick=True)
        assert data["schema"] == SCHEMA
        assert data["workloads"] == ["vectoradd"]
        assert set(data["modes"]) == set(MODES)
        for mode in MODES:
            record = data["modes"][mode]
            assert record["cycles"] > 0
            assert record["instructions"] > 0
            assert record["wall_seconds"] > 0
            assert record["cycles_per_second"] > 0
            assert "vectoradd" in record["workloads"]
        # Only the flags flow compiles, and never inside the timer.
        assert data["modes"]["flags"]["workloads"]["vectoradd"][
            "compile_seconds"
        ] > 0
        assert validate_bench(data) == []

    def test_default_sample_is_stable(self):
        assert DEFAULT_WORKLOADS == ("matrixmul", "blackscholes",
                                     "reduction")


class TestValidate:
    def _valid(self):
        return run_benchmark(workloads=("vectoradd",), quick=True)

    def test_rejects_non_object(self):
        assert validate_bench([1, 2]) != []
        assert validate_bench(None) != []

    def test_rejects_wrong_schema(self):
        data = self._valid()
        data["schema"] = "something-else/9"
        assert any("schema" in e for e in validate_bench(data))

    def test_rejects_missing_mode(self):
        data = self._valid()
        del data["modes"]["flags"]
        assert any("modes.flags" in e for e in validate_bench(data))

    def test_rejects_corrupt_field(self):
        data = self._valid()
        data["modes"]["baseline"]["cycles"] = "lots"
        assert any(
            "modes.baseline.cycles" in e for e in validate_bench(data)
        )


class TestCli:
    def test_writes_and_validates_result_file(self, tmp_path, capsys):
        out = tmp_path / "bench.json"
        assert main(TINY + ["--out", str(out)]) == 0
        printed = capsys.readouterr().out
        assert "cycles/s" in printed
        data = json.loads(out.read_text())
        assert data["quick"] is True
        assert validate_bench(data) == []

        assert main(["--validate", str(out)]) == 0
        assert "valid" in capsys.readouterr().out

    def test_validate_rejects_corruption(self, tmp_path, capsys):
        out = tmp_path / "bench.json"
        assert main(TINY + ["--out", str(out)]) == 0
        data = json.loads(out.read_text())
        data["modes"]["redefine"]["cycles"] = None
        out.write_text(json.dumps(data))
        assert main(["--validate", str(out)]) == 1
        assert "invalid" in capsys.readouterr().err

    def test_validate_rejects_unreadable_json(self, tmp_path, capsys):
        out = tmp_path / "bench.json"
        out.write_text("{not json")
        assert main(["--validate", str(out)]) == 1
        assert "invalid" in capsys.readouterr().err


class TestRunnerProfile:
    def test_profile_prints_hotspots_and_saves_pstats(
        self, tmp_path, monkeypatch, capsys
    ):
        from repro.experiments.runner import main as runner_main

        monkeypatch.chdir(tmp_path)
        assert runner_main(["--quick", "--profile", "fig07"]) == 0
        out = capsys.readouterr().out
        assert "cumulative" in out
        assert "profile: profile.pstats" in out
        assert (tmp_path / "profile.pstats").exists()

        # The saved dump must be loadable by pstats-based tools.
        import pstats

        stats = pstats.Stats(str(tmp_path / "profile.pstats"))
        assert stats.total_calls > 0
