"""Hot-path benchmark harness and profiling-flag CLI tests."""

from __future__ import annotations

import json

import pytest

from repro.analysis.bench import (
    DEFAULT_WORKLOADS,
    GATE_BATCH_SPEEDUP_FLOOR,
    GATE_JIT_SPEEDUP_FLOOR,
    GATE_PIPELINE_FLOOR,
    GATE_SERVICE_DEDUPE_FLOOR,
    GATE_SERVICE_SPEEDUP_FLOOR,
    GATE_SPEEDUP_FLOOR,
    GATE_VECTOR_SPEEDUP_FLOOR,
    MODES,
    SCHEMA,
    SHRINK_WORKLOADS,
    compare_bench,
    gate_bench,
    main,
    run_benchmark,
    run_pipeline_bench,
    validate_bench,
)

#: One tiny workload keeps the CLI round-trips fast.
TINY = [
    "--workloads", "vectoradd", "--shrink-workloads", "vectoradd",
    "--quick",
]


def _tiny_benchmark():
    return run_benchmark(
        workloads=("vectoradd",), shrink_workloads=("vectoradd",),
        quick=True,
    )


class TestRunBenchmark:
    def test_matrix_shape_and_schema(self):
        data = _tiny_benchmark()
        assert data["schema"] == SCHEMA
        assert data["workloads"] == ["vectoradd"]
        assert data["shrink_workloads"] == ["vectoradd"]
        assert set(data["modes"]) == set(MODES)
        for mode in MODES:
            record = data["modes"][mode]
            assert record["cycles"] > 0
            assert record["instructions"] > 0
            assert record["wall_seconds"] > 0
            assert record["cycles_per_second"] > 0
            assert record["ticks_executed"] > 0
            assert record["skipped_cycles"] >= 0
            assert 0.0 <= record["skipped_fraction"] < 1.0
            assert "vectoradd" in record["workloads"]
        # Only the flags flows compile, and never inside the timer.
        for mode in ("flags", "shrink"):
            assert data["modes"][mode]["workloads"]["vectoradd"][
                "compile_seconds"
            ] > 0
        # The shrink mode times the per-cycle path too.
        shrink = data["modes"]["shrink"]
        assert shrink["wall_seconds_noskip"] > 0
        assert shrink["cycles_per_second_noskip"] > 0
        assert shrink["speedup"] > 0
        # The flags mode times both register-state engines (v4) and
        # the per-warp no-batch reference (v5).
        flags = data["modes"]["flags"]
        assert flags["wall_seconds_scalar"] > 0
        assert flags["cycles_per_second_scalar"] > 0
        assert flags["vector_speedup"] > 0
        assert flags["wall_seconds_nobatch"] > 0
        assert flags["cycles_per_second_batch"] == flags[
            "cycles_per_second"
        ]
        assert flags["batch_speedup"] > 0
        # ... and the generic no-JIT issue path (v6).
        assert flags["wall_seconds_nojit"] > 0
        assert flags["cycles_per_second_jit"] == flags[
            "cycles_per_second"
        ]
        assert flags["jit_speedup"] > 0
        # v6 variance fields on every record, mode and workload alike.
        for mode in MODES:
            record = data["modes"][mode]
            assert len(record["wall_samples"]) == record["runs"]
            assert record["wall_min"] == min(record["wall_samples"])
            assert record["wall_stddev"] >= 0.0
            assert record["wall_median"] > 0.0
            wrec = record["workloads"]["vectoradd"]
            assert len(wrec["wall_samples"]) == wrec["runs"]
            assert wrec["wall_seconds"] == wrec["wall_min"]
        assert validate_bench(data) == []

    def test_default_samples_are_stable(self):
        assert DEFAULT_WORKLOADS == ("matrixmul", "blackscholes",
                                     "reduction")
        assert SHRINK_WORKLOADS == ("scalarprod", "backprop", "lud")


class TestValidate:
    def _valid(self):
        return _tiny_benchmark()

    def test_rejects_non_object(self):
        assert validate_bench([1, 2]) != []
        assert validate_bench(None) != []

    def test_rejects_wrong_schema(self):
        data = self._valid()
        data["schema"] = "something-else/9"
        assert any("schema" in e for e in validate_bench(data))

    def test_rejects_missing_mode(self):
        data = self._valid()
        del data["modes"]["flags"]
        assert any("modes.flags" in e for e in validate_bench(data))

    def test_rejects_corrupt_field(self):
        data = self._valid()
        data["modes"]["baseline"]["cycles"] = "lots"
        assert any(
            "modes.baseline.cycles" in e for e in validate_bench(data)
        )

    def test_rejects_missing_shrink_extras(self):
        data = self._valid()
        del data["modes"]["shrink"]["speedup"]
        assert any(
            "modes.shrink.speedup" in e for e in validate_bench(data)
        )

    def test_rejects_missing_flags_extras(self):
        data = self._valid()
        del data["modes"]["flags"]["vector_speedup"]
        assert any(
            "modes.flags.vector_speedup" in e for e in validate_bench(data)
        )

    def test_rejects_missing_jit_fields(self):
        data = self._valid()
        del data["modes"]["flags"]["jit_speedup"]
        assert any(
            "modes.flags.jit_speedup" in e for e in validate_bench(data)
        )

    def test_rejects_sample_count_mismatch(self):
        data = self._valid()
        data["modes"]["flags"]["wall_samples"].append(1.0)
        assert any(
            "modes.flags.wall_samples" in e for e in validate_bench(data)
        )

    def test_rejects_memoized_compile_timing(self):
        # compile_seconds == 0.0 is the signature of the pre-v6 bug:
        # the timing pass was answered from the result-cache memo.
        data = self._valid()
        data["modes"]["flags"]["workloads"]["vectoradd"][
            "compile_seconds"
        ] = 0.0
        assert any(
            "compile_seconds" in e and "memoized" in e
            for e in validate_bench(data)
        )


def _synthetic_result(
    base_cps=100.0, flags_cps=80.0, redefine_cps=70.0, shrink_cps=300.0,
    speedup=3.0, vector_speedup=1.5, batch_speedup=1.0, jit_speedup=1.0,
):
    """Minimal two-file comparison fixture (no simulation needed)."""
    modes = {}
    for mode, cps in (
        ("baseline", base_cps), ("flags", flags_cps),
        ("redefine", redefine_cps), ("shrink", shrink_cps),
    ):
        modes[mode] = {
            "wall_seconds": 1.0,
            "cycles": int(cps),
            "instructions": 100,
            "cycles_per_second": cps,
            "ticks_executed": 50,
            "skipped_cycles": 50,
            "skipped_fraction": 0.5,
            "runs": 1,
            "wall_samples": [1.0],
            "wall_stddev": 0.0,
            "wall_min": 1.0,
            "wall_median": 1.0,
        }
    modes["shrink"].update(
        wall_seconds_noskip=speedup,
        cycles_per_second_noskip=shrink_cps / speedup,
        speedup=speedup,
    )
    modes["flags"].update(
        wall_seconds_scalar=vector_speedup,
        cycles_per_second_scalar=flags_cps / vector_speedup,
        vector_speedup=vector_speedup,
        wall_seconds_nobatch=batch_speedup,
        cycles_per_second_batch=flags_cps,
        batch_speedup=batch_speedup,
        wall_seconds_nojit=jit_speedup,
        cycles_per_second_jit=flags_cps,
        jit_speedup=jit_speedup,
    )
    return {
        "schema": SCHEMA, "quick": False, "scale": 1.0, "waves": 2,
        "workloads": ["w"], "shrink_workloads": ["s"],
        "shrink_fraction": 0.15, "modes": modes,
        "total": {"wall_seconds": 4.0, "cycles": 4},
    }


def _synthetic_pipeline(speedup=8.0, identical=True):
    return {
        "experiments": ["fig10"], "jobs": 1,
        "declared_flows": 10, "unique_flows": 6,
        "dedup_ratio": 10 / 6,
        "cold_seconds": speedup, "warm_seconds": 1.0,
        "speedup": speedup, "identical": identical,
    }


def _synthetic_service(dedupe=3.0, speedup=6.0, mismatches=0):
    """A well-formed v7 ``service`` section (no daemon needed)."""
    executed = 20
    coalesced = int(executed * (dedupe - 1.0))
    requests = 60
    return {
        "clients": 8,
        "requests": requests,
        "unique_flows": 20,
        "zipf_s": 1.1,
        "wall_seconds": 1.0,
        "requests_per_second": float(requests),
        "baseline_seconds": speedup,
        "throughput_speedup": speedup,
        "executed": executed,
        "coalesced": coalesced,
        "cache_hit_requests": requests - executed - coalesced,
        "single_flight_dedupe": dedupe,
        "request_dedupe": requests / executed,
        "verified": True,
        "mismatches": mismatches,
    }


class TestRepeat:
    def test_best_of_n_keeps_single_run_counters(self):
        once = run_benchmark(
            workloads=("vectoradd",), shrink_workloads=("vectoradd",),
            quick=True, repeats=1,
        )
        twice = run_benchmark(
            workloads=("vectoradd",), shrink_workloads=("vectoradd",),
            quick=True, repeats=2,
        )
        for mode in MODES:
            # Deterministic counters: best-of-2 must not double them.
            assert (
                twice["modes"][mode]["cycles"]
                == once["modes"][mode]["cycles"]
            )
            assert twice["modes"][mode]["runs"] == 2
            # v6: both raw samples survive, and the headline wall is
            # their minimum.
            samples = twice["modes"][mode]["wall_samples"]
            assert len(samples) == 2
            assert twice["modes"][mode]["wall_seconds"] == min(samples)

    def test_cli_repeat_flag(self, tmp_path):
        out = tmp_path / "bench.json"
        assert main(TINY + ["--repeat", "2", "--out", str(out)]) == 0
        data = json.loads(out.read_text())
        assert data["modes"]["baseline"]["runs"] == 2
        assert validate_bench(data) == []


class TestPipelineBench:
    def test_cold_warm_round_trip(self):
        record = run_pipeline_bench(
            experiments=("schedulers",), quick=True
        )
        assert record["identical"] is True
        assert record["unique_flows"] > 0
        assert record["declared_flows"] >= record["unique_flows"]
        assert record["cold_seconds"] > record["warm_seconds"] > 0
        data = _tiny_benchmark()
        data["pipeline"] = record
        assert validate_bench(data) == []

    def test_validate_accepts_missing_pipeline(self):
        assert validate_bench(_tiny_benchmark()) == []

    def test_validate_rejects_corrupt_pipeline(self):
        data = _tiny_benchmark()
        data["pipeline"] = _synthetic_pipeline()
        data["pipeline"]["speedup"] = "fast"
        assert any(
            "pipeline.speedup" in e for e in validate_bench(data)
        )


class TestCompareAndGate:
    def test_compare_reports_normalized_deltas(self):
        old = _synthetic_result()
        new = _synthetic_result(base_cps=200.0, flags_cps=160.0,
                                redefine_cps=140.0, shrink_cps=600.0)
        table = compare_bench(old, new)
        # Twice as fast absolutely, but identical shape: every
        # normalized delta is zero.
        assert "+100.0%" in table
        assert "+0.0%" in table
        assert "3.00x" in table

    def test_gate_passes_identical_shape(self):
        old = _synthetic_result()
        new = _synthetic_result(base_cps=50.0, flags_cps=40.0,
                                redefine_cps=35.0, shrink_cps=150.0)
        # A uniform slowdown (different machine) is not a regression.
        assert gate_bench(old, new, pct=0.30) == []

    def test_gate_fails_on_mode_regression(self):
        old = _synthetic_result()
        new = _synthetic_result(flags_cps=40.0)  # 0.8 -> 0.4 normalized
        errors = gate_bench(old, new, pct=0.30)
        assert any("flags" in e for e in errors)

    def test_gate_tolerates_small_regression(self):
        old = _synthetic_result()
        new = _synthetic_result(flags_cps=70.0)  # 0.8 -> 0.7 normalized
        assert gate_bench(old, new, pct=0.30) == []

    def test_gate_fails_when_speedup_collapses(self):
        old = _synthetic_result()
        new = _synthetic_result(speedup=GATE_SPEEDUP_FLOOR - 0.2)
        errors = gate_bench(old, new, pct=0.30)
        assert any("speedup" in e for e in errors)

    def test_gate_fails_when_vector_engine_regresses(self):
        old = _synthetic_result()
        new = _synthetic_result(
            vector_speedup=GATE_VECTOR_SPEEDUP_FLOOR - 0.1
        )
        errors = gate_bench(old, new, pct=0.30)
        assert any("vector-engine" in e for e in errors)

    def test_gate_skips_vector_check_for_pre_v4_reference(self):
        old = _synthetic_result()
        del old["modes"]["flags"]["vector_speedup"]
        new = _synthetic_result(vector_speedup=0.5)
        assert gate_bench(old, new, pct=0.30) == []

    def test_gate_fails_when_batch_engine_regresses(self):
        old = _synthetic_result()
        new = _synthetic_result(
            batch_speedup=GATE_BATCH_SPEEDUP_FLOOR - 0.1
        )
        errors = gate_bench(old, new, pct=0.30)
        assert any("batch-engine" in e for e in errors)

    def test_gate_skips_batch_check_for_pre_v5_reference(self):
        old = _synthetic_result()
        del old["modes"]["flags"]["batch_speedup"]
        new = _synthetic_result(batch_speedup=0.5)
        assert gate_bench(old, new, pct=0.30) == []

    def test_gate_fails_when_trace_jit_regresses(self):
        old = _synthetic_result()
        new = _synthetic_result(
            jit_speedup=GATE_JIT_SPEEDUP_FLOOR - 0.1
        )
        errors = gate_bench(old, new, pct=0.30)
        assert any("trace-JIT" in e for e in errors)

    def test_gate_skips_jit_check_for_pre_v6_reference(self):
        old = _synthetic_result()
        del old["modes"]["flags"]["jit_speedup"]
        new = _synthetic_result(jit_speedup=0.5)
        assert gate_bench(old, new, pct=0.30) == []

    def test_gate_ignores_pipeline_when_reference_lacks_it(self):
        old = _synthetic_result()
        new = _synthetic_result()
        new["pipeline"] = _synthetic_pipeline(speedup=1.0)
        assert gate_bench(old, new, pct=0.30) == []

    def test_gate_requires_pipeline_when_reference_has_it(self):
        old = _synthetic_result()
        old["pipeline"] = _synthetic_pipeline()
        new = _synthetic_result()
        errors = gate_bench(old, new, pct=0.30)
        assert any("--pipeline" in e for e in errors)

    def test_gate_fails_slow_or_unequal_pipeline(self):
        old = _synthetic_result()
        old["pipeline"] = _synthetic_pipeline()
        slow = _synthetic_result()
        slow["pipeline"] = _synthetic_pipeline(
            speedup=GATE_PIPELINE_FLOOR - 0.5
        )
        assert any(
            "pipeline" in e for e in gate_bench(old, slow, pct=0.30)
        )
        unequal = _synthetic_result()
        unequal["pipeline"] = _synthetic_pipeline(identical=False)
        assert any(
            "identical" in e for e in gate_bench(old, unequal, pct=0.30)
        )

    def test_gate_passes_healthy_pipeline(self):
        old = _synthetic_result()
        old["pipeline"] = _synthetic_pipeline()
        new = _synthetic_result()
        new["pipeline"] = _synthetic_pipeline(speedup=6.0)
        assert gate_bench(old, new, pct=0.30) == []


class TestServiceSection:
    def test_validate_accepts_missing_service(self):
        assert validate_bench(_synthetic_result()) == []

    def test_validate_accepts_healthy_service(self):
        data = _synthetic_result()
        data["service"] = _synthetic_service()
        assert validate_bench(data) == []

    def test_validate_rejects_corrupt_service(self):
        data = _synthetic_result()
        data["service"] = _synthetic_service()
        data["service"]["single_flight_dedupe"] = "lots"
        assert any(
            "service.single_flight_dedupe" in e
            for e in validate_bench(data)
        )
        data["service"] = [1, 2]
        assert any("'service'" in e for e in validate_bench(data))

    def test_validate_rejects_broken_request_accounting(self):
        # executed + coalesced + cache_hit_requests must equal requests
        # — the daemon counters account for every request exactly once.
        data = _synthetic_result()
        data["service"] = _synthetic_service()
        data["service"]["executed"] += 1
        assert any(
            "cache_hit_requests" in e for e in validate_bench(data)
        )

    def test_gate_ignores_service_when_reference_lacks_it(self):
        old = _synthetic_result()
        new = _synthetic_result()
        new["service"] = _synthetic_service(dedupe=1.0, speedup=0.5)
        assert gate_bench(old, new, pct=0.30) == []

    def test_gate_requires_service_when_reference_has_it(self):
        old = _synthetic_result()
        old["service"] = _synthetic_service()
        new = _synthetic_result()
        errors = gate_bench(old, new, pct=0.30)
        assert any("--service" in e for e in errors)

    def test_gate_fails_degraded_service(self):
        old = _synthetic_result()
        old["service"] = _synthetic_service()
        weak_dedupe = _synthetic_result()
        weak_dedupe["service"] = _synthetic_service(
            dedupe=GATE_SERVICE_DEDUPE_FLOOR - 0.5
        )
        assert any(
            "dedupe" in e
            for e in gate_bench(old, weak_dedupe, pct=0.30)
        )
        slow = _synthetic_result()
        slow["service"] = _synthetic_service(
            speedup=GATE_SERVICE_SPEEDUP_FLOOR - 0.5
        )
        assert any(
            "throughput" in e for e in gate_bench(old, slow, pct=0.30)
        )
        unequal = _synthetic_result()
        unequal["service"] = _synthetic_service(mismatches=3)
        assert any(
            "bit-identical" in e
            for e in gate_bench(old, unequal, pct=0.30)
        )

    def test_gate_passes_healthy_service(self):
        old = _synthetic_result()
        old["service"] = _synthetic_service()
        new = _synthetic_result()
        new["service"] = _synthetic_service(dedupe=2.5, speedup=4.0)
        assert gate_bench(old, new, pct=0.30) == []

    def test_compare_reports_service_deltas(self):
        old = _synthetic_result()
        old["service"] = _synthetic_service(dedupe=3.0)
        new = _synthetic_result()
        new["service"] = _synthetic_service(dedupe=2.5)
        table = compare_bench(old, new)
        assert "single-flight dedupe" in table
        assert "throughput" in table


class TestCli:
    def test_writes_and_validates_result_file(self, tmp_path, capsys):
        out = tmp_path / "bench.json"
        assert main(TINY + ["--out", str(out)]) == 0
        printed = capsys.readouterr().out
        assert "cycles/s" in printed
        data = json.loads(out.read_text())
        assert data["quick"] is True
        assert validate_bench(data) == []

        assert main(["--validate", str(out)]) == 0
        assert "valid" in capsys.readouterr().out

    def test_validate_rejects_corruption(self, tmp_path, capsys):
        out = tmp_path / "bench.json"
        assert main(TINY + ["--out", str(out)]) == 0
        data = json.loads(out.read_text())
        data["modes"]["redefine"]["cycles"] = None
        out.write_text(json.dumps(data))
        assert main(["--validate", str(out)]) == 1
        assert "invalid" in capsys.readouterr().err

    def test_validate_rejects_unreadable_json(self, tmp_path, capsys):
        out = tmp_path / "bench.json"
        out.write_text("{not json")
        assert main(["--validate", str(out)]) == 1
        assert "invalid" in capsys.readouterr().err

    def test_compare_prints_delta_table(self, tmp_path, capsys):
        old = tmp_path / "old.json"
        old.write_text(json.dumps(_synthetic_result()))
        out = tmp_path / "new.json"
        assert main(TINY + ["--out", str(out),
                            "--compare", str(old)]) == 0
        printed = capsys.readouterr().out
        assert "compared against" in printed
        assert "Δnorm%" in printed

    def test_gate_requires_compare(self, capsys):
        with pytest.raises(SystemExit):
            main(TINY + ["--gate", "0.30"])

    def test_gate_failure_sets_exit_code(self, tmp_path, capsys):
        # A reference whose normalized shrink throughput is
        # unreachably high forces a gate failure.
        reference = _synthetic_result(shrink_cps=100000.0)
        old = tmp_path / "old.json"
        old.write_text(json.dumps(reference))
        out = tmp_path / "new.json"
        assert main(TINY + ["--out", str(out), "--compare", str(old),
                            "--gate", "0.30"]) == 1
        assert "gate:" in capsys.readouterr().err


class TestRunnerProfile:
    def test_profile_prints_hotspots_and_saves_pstats(
        self, tmp_path, monkeypatch, capsys
    ):
        from repro.experiments.runner import main as runner_main

        monkeypatch.chdir(tmp_path)
        assert runner_main(["--quick", "--profile", "fig07"]) == 0
        out = capsys.readouterr().out
        assert "cumulative" in out
        assert "jit codegen:" in out
        assert "compiled block runs" in out
        assert "profile: profile.pstats" in out
        assert (tmp_path / "profile.pstats").exists()

        # The saved dump must be loadable by pstats-based tools.
        import pstats

        stats = pstats.Stats(str(tmp_path / "profile.pstats"))
        assert stats.total_calls > 0
