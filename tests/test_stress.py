"""Stress and fault-injection tests."""

import pytest

from repro.arch import GPUConfig
from repro.compiler import compile_kernel
from repro.errors import RenamingError
from repro.isa import CmpOp, KernelBuilder, Special
from repro.launch import LaunchConfig
from repro.sim import simulate


def build_large_kernel(blocks=40, body=12):
    """A long kernel with many basic blocks and nested control flow."""
    b = KernelBuilder("large", num_preds=8)
    b.s2r(0, Special.TID)
    b.movi(1, 0)
    for index in range(blocks):
        reg = 2 + (index % 10)
        b.iadd(reg, 0, 1)
        for inner in range(body):
            b.imad(2 + ((index + inner) % 10), reg, reg, 1)
        b.setp(1, reg, CmpOp.GT, imm=index)
        skip = b.fresh_label()
        b.bra(skip, pred=1)
        b.iadd(1, 1, reg)
        b.place(skip)
        b.nop()
    b.stg(addr=0, value=1)
    b.exit()
    return b.build()


class TestScale:
    def test_large_kernel_compiles_and_runs(self):
        kernel = build_large_kernel()
        assert len(kernel) > 500
        launch = LaunchConfig(16, 64, conc_ctas_per_sm=2)
        config = GPUConfig.renamed()
        compiled = compile_kernel(kernel, launch, config)
        result = simulate(
            compiled.kernel, launch, config, mode="flags",
            threshold=compiled.renaming_threshold,
            max_ctas_per_sm_sim=1,
        )
        assert result.stats.ctas_completed == 1
        # Many blocks -> many PIR windows; multi-PIR blocks exist.
        assert compiled.kernel.meta_count() > 40

    def test_deep_loop_nest(self):
        b = KernelBuilder("nest", num_preds=8)
        b.s2r(0, Special.TID)
        b.movi(1, 0)
        counters = (2, 3, 4)
        labels = []
        for depth, counter in enumerate(counters):
            b.movi(counter, 2)
            labels.append(b.label(f"L{depth}"))
        b.iadd(1, 1, 0)
        for depth in reversed(range(len(counters))):
            counter = counters[depth]
            b.iaddi(counter, counter, -1)
            b.setp(depth, counter, CmpOp.GT, imm=0)
            b.bra(labels[depth], pred=depth)
        b.stg(addr=0, value=1)
        b.exit()
        kernel = b.build()
        launch = LaunchConfig(4, 32, conc_ctas_per_sm=1)
        result = simulate(kernel.clone(), launch, mode="baseline")
        # 2 * (2 ... wait) innermost body runs 2*2*2 = 8 times... but
        # outer loops re-enter inner headers without reinitializing
        # counters, so just check completion and a sane lower bound.
        assert result.stats.warps_completed == 1
        assert result.instructions > 20


class TestFaultInjection:
    def test_runtime_detector_catches_forged_premature_release(self):
        """Corrupt a compiled kernel's release flags so a live register
        is released; the renaming table must detect the use after
        release instead of silently computing with a lost value."""
        b = KernelBuilder("forged")
        b.s2r(0, Special.TID)
        b.movi(1, 7)
        b.iadd(2, 0, 1)
        b.iadd(3, 2, 1)  # r1 genuinely dies here
        b.stg(addr=0, value=3)
        b.exit()
        kernel = b.build()
        launch = LaunchConfig(1, 32, conc_ctas_per_sm=1)
        config = GPUConfig.renamed()
        compiled = compile_kernel(kernel, launch, config)
        # Forge: release r1 at its FIRST read (pc of "IADD r2, r0, r1"),
        # where it is still live.
        victim = next(
            inst for inst in compiled.kernel.instructions
            if inst.dst == 2 and not inst.is_meta
        )
        victim.release_srcs = (False, True)
        with pytest.raises(RenamingError, match="use-after-release"):
            simulate(
                compiled.kernel, launch, config, mode="flags",
                threshold=compiled.renaming_threshold,
            )

    def test_forged_pbr_release_detected(self):
        """A PBR that releases a live loop-carried register trips the
        detector on the next loop iteration's read."""
        from repro.isa import Opcode

        b = KernelBuilder("forgedloop")
        b.s2r(0, Special.TID)
        b.movi(1, 0)
        b.movi(2, 4)
        b.label("top")
        b.ldg(3, addr=0, offset=0x100)
        b.iadd(1, 1, 3)
        b.iaddi(2, 2, -1)
        b.setp(0, 2, CmpOp.GT, imm=0)
        b.bra("top", pred=0)
        b.stg(addr=0, value=1)
        b.exit()
        kernel = b.build()
        launch = LaunchConfig(1, 32, conc_ctas_per_sm=1)
        config = GPUConfig.renamed()
        compiled = compile_kernel(kernel, launch, config)
        # Find the loop-body PIR's first covered instruction and forge a
        # release of the accumulator (r-renumbered) at the LDG's read...
        # simplest reliable forgery: make the loop-exit PBR also appear
        # at the loop header by injecting release_regs onto the first
        # in-loop instruction's PBR... instead, corrupt the existing
        # PBR to release the accumulator while it is still read later.
        store = next(
            inst for inst in compiled.kernel.instructions
            if inst.opcode is Opcode.STG
        )
        accumulator = store.srcs[1]
        pbr = next(
            (inst for inst in compiled.kernel.instructions
             if inst.opcode is Opcode.PBR), None
        )
        if pbr is None:
            pytest.skip("no PBR emitted for this kernel shape")
        # PBR sits at the loop exit, before the store reads the
        # accumulator: releasing it there must be caught at the store.
        pbr.release_regs = tuple(
            set(pbr.release_regs) | {accumulator}
        )
        with pytest.raises(RenamingError, match="use-after-release"):
            simulate(
                compiled.kernel, launch, config, mode="flags",
                threshold=compiled.renaming_threshold,
            )
