"""SM core integration tests on small kernels."""

import pytest

from repro.arch import GPUConfig
from repro.compiler import compile_kernel
from repro.errors import SimulationError
from repro.isa import CmpOp, KernelBuilder, Special, assemble
from repro.launch import LaunchConfig
from repro.sim import simulate
from repro.sim.gpu import GPU

ONE_WARP = LaunchConfig(1, 32, conc_ctas_per_sm=1)
TWO_CTAS = LaunchConfig(2, 64, conc_ctas_per_sm=2)


def run_modes(kernel, launch, **kwargs):
    """Run baseline / flags / redefine; return the three results."""
    base = simulate(kernel.clone(), launch, GPUConfig.baseline(),
                    mode="baseline", **kwargs)
    compiled = compile_kernel(kernel, launch, GPUConfig.renamed())
    flags = simulate(compiled.kernel, launch, GPUConfig.renamed(),
                     mode="flags", threshold=compiled.renaming_threshold,
                     **kwargs)
    redefine = simulate(kernel.clone(), launch, GPUConfig.renamed(),
                        mode="redefine", **kwargs)
    return base, flags, redefine


class TestBasicExecution:
    def test_straight_kernel_completes(self, straight_kernel):
        result = simulate(straight_kernel, ONE_WARP, mode="baseline")
        assert result.stats.warps_completed == 1
        assert result.stats.ctas_completed == 1
        assert result.instructions == len(straight_kernel)

    def test_divergent_kernel_executes_both_paths(self, diamond_kernel):
        result = simulate(diamond_kernel, ONE_WARP, mode="baseline")
        assert result.stats.divergent_branches == 1
        # A diverged warp traverses both sides sequentially, executing
        # every instruction; a uniform warp would skip one side.
        assert result.instructions == len(diamond_kernel)

    def test_loop_kernel_iterates(self, loop_kernel):
        result = simulate(loop_kernel, ONE_WARP, mode="baseline")
        # 3 prologue + 4 iterations x 5 + 2 epilogue
        assert result.instructions == 3 + 4 * 5 + 2

    def test_barrier_synchronizes_warps(self, barrier_kernel):
        result = simulate(barrier_kernel, TWO_CTAS, mode="baseline")
        # One CTA of the grid lands on the simulated SM: 2 warps arrive.
        assert result.stats.barriers == 2
        assert result.stats.ctas_completed == 1

    def test_stores_land_in_global_memory(self, straight_kernel):
        gpu = GPU(GPUConfig.baseline(), straight_kernel, ONE_WARP,
                  mode="baseline")
        gpu.run()
        # STG [r3], r2 with r2 = tid + 16, r3 = r2 << 2.
        assert gpu.gmem.peek((0 + 16) << 2) == 16

    def test_max_cycles_guard(self, loop_kernel):
        with pytest.raises(SimulationError):
            simulate(loop_kernel, ONE_WARP, mode="baseline", max_cycles=3)


class TestModeEquivalence:
    def test_same_instruction_counts(self, loop_kernel):
        base, flags, redefine = run_modes(loop_kernel, TWO_CTAS)
        assert base.instructions == flags.instructions
        assert base.instructions == redefine.instructions

    def test_divergent_equivalence(self, diamond_kernel):
        base, flags, redefine = run_modes(diamond_kernel, TWO_CTAS)
        assert base.instructions == flags.instructions == \
            redefine.instructions

    def test_flags_mode_uses_fewer_peak_registers(self, loop_kernel):
        base, flags, _ = run_modes(loop_kernel, TWO_CTAS)
        assert (
            flags.stats.max_live_registers
            <= base.stats.max_live_registers
        )

    def test_redefine_between_baseline_and_flags(self, loop_kernel):
        base, flags, redefine = run_modes(loop_kernel, TWO_CTAS)
        assert (
            flags.stats.max_live_registers
            <= redefine.stats.max_live_registers
            <= base.stats.max_live_registers
        )


class TestMetadataProcessing:
    def test_pir_decoded_then_cached(self, loop_kernel):
        compiled = compile_kernel(
            loop_kernel, TWO_CTAS, GPUConfig.renamed()
        )
        result = simulate(compiled.kernel, TWO_CTAS,
                          GPUConfig.renamed(), mode="flags")
        stats = result.stats
        assert stats.pir_decoded >= 1
        assert stats.pir_skipped > stats.pir_decoded
        assert stats.flag_cache_hits == stats.pir_skipped

    def test_no_cache_decodes_every_pir(self, loop_kernel):
        config = GPUConfig.renamed(release_flag_cache_entries=0)
        compiled = compile_kernel(loop_kernel, TWO_CTAS, config)
        result = simulate(compiled.kernel, TWO_CTAS, config, mode="flags")
        assert result.stats.pir_skipped == 0
        assert result.stats.pir_decoded > 0

    def test_releases_recycle_registers(self, loop_kernel):
        compiled = compile_kernel(
            loop_kernel, TWO_CTAS, GPUConfig.renamed()
        )
        result = simulate(compiled.kernel, TWO_CTAS,
                          GPUConfig.renamed(), mode="flags")
        stats = result.stats
        assert stats.registers_released_events > 0
        # Never above the architected reservation; with so few
        # registers the tiny loop kernel may momentarily use them all.
        assert stats.max_live_registers <= stats.max_architected_allocated


class TestBaselinePolicy:
    def test_baseline_pins_full_architected_set(self, loop_kernel):
        result = simulate(loop_kernel.clone(), TWO_CTAS, mode="baseline")
        demand = 2 * loop_kernel.num_regs  # 2 warps x 4 regs... per CTA
        assert result.stats.max_live_registers == \
            result.stats.max_architected_allocated
        assert result.stats.max_live_registers >= demand

    def test_baseline_on_shrunk_config_rejected(self, loop_kernel):
        with pytest.raises(SimulationError):
            simulate(loop_kernel.clone(), TWO_CTAS,
                     GPUConfig.shrunk(0.5), mode="baseline")

    def test_unknown_mode_rejected(self, loop_kernel):
        with pytest.raises(SimulationError):
            simulate(loop_kernel.clone(), TWO_CTAS, mode="bogus")


class TestGpuShrink:
    def build_pressure_kernel(self, num_regs=24):
        """Many live registers held across a long-latency load."""
        b = KernelBuilder("pressure")
        b.s2r(0, Special.TID)
        for reg in range(1, num_regs):
            b.iadd(reg, 0, 0)
        b.ldg(0, addr=0)
        for reg in range(1, num_regs):
            b.iadd(0, 0, reg)
        b.stg(addr=0, value=0)
        b.exit()
        return b.build()

    def test_shrink_completes_under_pressure(self):
        kernel = self.build_pressure_kernel()
        launch = LaunchConfig(4, 64, conc_ctas_per_sm=4)
        config = GPUConfig.shrunk(0.5)
        compiled = compile_kernel(kernel, launch, config)
        result = simulate(compiled.kernel, launch, config, mode="flags",
                          threshold=compiled.renaming_threshold)
        assert result.stats.ctas_completed == 1
        assert result.stats.max_live_registers <= 512

    def test_tiny_physical_file_triggers_throttle_or_spill(self):
        kernel = self.build_pressure_kernel(num_regs=30)
        # 8 warps x 30 regs = 240 demanded; physical file of 128.
        # grid of 32 CTAs so the simulated SM receives two at a time.
        launch = LaunchConfig(32, 128, conc_ctas_per_sm=2)
        config = GPUConfig.shrunk(0.125)
        compiled = compile_kernel(kernel, launch, config)
        result = simulate(compiled.kernel, launch, config, mode="flags",
                          threshold=compiled.renaming_threshold)
        stats = result.stats
        assert stats.ctas_completed >= 1
        assert stats.throttle_activations > 0 or stats.spill_events > 0

    def test_single_cta_exceeding_file_spills(self):
        kernel = self.build_pressure_kernel(num_regs=40)
        # One CTA of 4 warps x 40 regs = 160 > 128 physical registers:
        # the Section 8.1 corner case; progress requires spilling.
        launch = LaunchConfig(1, 128, conc_ctas_per_sm=1)
        config = GPUConfig.shrunk(0.125)
        compiled = compile_kernel(kernel, launch, config)
        result = simulate(compiled.kernel, launch, config, mode="flags",
                          threshold=compiled.renaming_threshold)
        stats = result.stats
        assert stats.ctas_completed == 1
        assert stats.spill_events > 0
        assert stats.fill_events > 0


class TestSampling:
    def test_live_samples_recorded(self, loop_kernel):
        compiled = compile_kernel(
            loop_kernel, TWO_CTAS, GPUConfig.renamed()
        )
        result = simulate(compiled.kernel, TWO_CTAS,
                          GPUConfig.renamed(), mode="flags",
                          threshold=compiled.renaming_threshold,
                          sample_interval=5)
        samples = result.stats.live_samples
        assert samples
        cycles = [cycle for cycle, _, _ in samples]
        assert cycles == sorted(cycles)
        for _, live, allocated in samples:
            assert 0 <= live <= max(allocated, 1024)

    def test_lifetime_trace_events(self, loop_kernel):
        compiled = compile_kernel(
            loop_kernel, TWO_CTAS, GPUConfig.renamed()
        )
        result = simulate(compiled.kernel, TWO_CTAS,
                          GPUConfig.renamed(), mode="flags",
                          threshold=compiled.renaming_threshold,
                          trace_warp_slots=(0,))
        events = result.stats.lifetime_events
        assert any(event == "def" for _, _, _, event in events)
        assert any(event == "release" for _, _, _, event in events)
        assert all(slot == 0 for _, slot, _, _ in events)


class TestMultiExitKernel:
    def test_divergent_exit(self):
        kernel = assemble(
            ".kernel k\n"
            "S2R r0, SR_TID\n"
            "SETP p0, r0, 16, LT\n"
            "@p0 BRA early\n"
            "STG [r0], r0\n"
            "EXIT\n"
            "early:\n"
            "EXIT\n"
        )
        result = simulate(kernel, ONE_WARP, mode="baseline")
        assert result.stats.warps_completed == 1
        assert result.stats.divergent_branches == 1


class TestSpillTriggerAccounting:
    def test_streak_counts_stalled_cycles_not_failing_warps(self):
        """Regression: with every physical register taken, a cycle in
        which *several* warps fail allocation must advance the spill
        trigger streak by one, not once per failing warp."""
        from repro.sim.core import SMCore
        from repro.sim.memory import GlobalMemory

        b = KernelBuilder("wants_regs")
        b.s2r(0, Special.TID)
        b.stg(addr=0, value=0)
        b.exit()
        kernel = b.build()
        launch = LaunchConfig(1, 128, conc_ctas_per_sm=1)  # 4 warps
        core = SMCore(GPUConfig.shrunk(0.125), kernel, launch,
                      mode="redefine", gmem=GlobalMemory())
        core.cta_queue = [0]
        core._launch_ctas(0)
        while core.regfile.free_count:
            core.regfile.allocate(0, 0)
        exit_inst = kernel.instructions[-1]
        dummy_warp = core.resident[0].warps[0]
        # Keep one future event pending each cycle so the idle skip
        # advances one cycle at a time instead of forcing a spill.
        for cycle in range(1, 6):
            core._push_event(cycle, "wb", (dummy_warp, exit_inst))
        for expected in range(1, 6):
            core.tick()
            assert core._alloc_fail_streak == expected
        # All four warps failed every cycle; the per-warp stall counter
        # confirms the streak really saw multiple failures per cycle.
        assert core.stats.stall_no_free_register \
            >= 4 * core._alloc_fail_streak

    def test_streak_resets_on_successful_issue(self):
        from repro.sim.core import SMCore
        from repro.sim.memory import GlobalMemory

        b = KernelBuilder("tiny")
        b.s2r(0, Special.TID)
        b.stg(addr=0, value=0)
        b.exit()
        launch = LaunchConfig(1, 32, conc_ctas_per_sm=1)
        core = SMCore(GPUConfig.renamed(), b.build(), launch,
                      mode="redefine", gmem=GlobalMemory())
        core.cta_queue = [0]
        core._alloc_fail_streak = 17  # pretend a stall just ended
        core.tick()  # plenty of registers: the warp issues
        assert core.stats.issued == 1
        assert core._alloc_fail_streak == 0


class TestFailedLaunchRollback:
    def test_rollback_forgets_cta_counters(self, straight_kernel):
        """Regression: a renaming launch that rolls back must not leave
        stale cta_allocated / cta_assigned entries for its CTA uid."""
        from repro.sim.core import SMCore
        from repro.sim.memory import GlobalMemory

        launch = LaunchConfig(4, 64, conc_ctas_per_sm=1)
        core = SMCore(GPUConfig.shrunk(0.125), straight_kernel, launch,
                      mode="flags", threshold=4, gmem=GlobalMemory())
        while core.regfile.free_count:  # no room for the exempt set
            core.regfile.allocate(0, 0)
        core.cta_queue = [0, 1, 2]
        for _ in range(3):  # every attempt fails and must clean up
            assert not core._launch_one_cta(0)
        assert core.renaming.cta_allocated == {}
        assert core.renaming.cta_assigned == {}
        assert core.resident == []
        assert len(core._free_warp_slots) == \
            core.config.max_warps_per_sm

    def test_counters_track_resident_ctas_after_churn(self):
        """After a shrink run with launch pressure, the renaming table
        holds counters only for CTAs that are still resident (none,
        once the grid drains)."""
        from repro.sim.core import SMCore
        from repro.sim.memory import GlobalMemory

        b = KernelBuilder("pressure")
        b.s2r(0, Special.TID)
        for reg in range(1, 24):
            b.iadd(reg, 0, 0)
        b.stg(addr=0, value=0)
        b.exit()
        launch = LaunchConfig(8, 128, conc_ctas_per_sm=2)
        core = SMCore(GPUConfig.shrunk(0.25), b.build(), launch,
                      mode="redefine", gmem=GlobalMemory())
        core.cta_queue = list(range(8))
        core.run()
        assert core.stats.ctas_completed == 8
        assert core.renaming.cta_allocated == {}
        assert core.renaming.cta_assigned == {}


class TestRenamingTableConflicts:
    def test_conflicting_operand_ids_serialize(self):
        """r1 and r5 share renaming-table bank 1 (7.1): the lookup
        costs one extra cycle versus conflict-free operands."""
        def stats_of(src):
            # redefine mode keeps the original register ids (no
            # compaction), so the table-bank collision is visible.
            kernel = assemble(src)
            return simulate(
                kernel, ONE_WARP, GPUConfig.renamed(), mode="redefine"
            ).stats

        conflicting = stats_of(
            ".kernel k\nMOVI r1, 1\nMOVI r5, 2\nIADD r2, r1, r5\n"
            "STG [r2], r2\nEXIT"
        )
        clean = stats_of(
            ".kernel k\nMOVI r1, 1\nMOVI r4, 2\nIADD r2, r1, r4\n"
            "STG [r2], r2\nEXIT"
        )
        assert conflicting.renaming_conflict_cycles > \
            clean.renaming_conflict_cycles

    def test_baseline_has_no_table_conflicts(self, straight_kernel):
        result = simulate(straight_kernel.clone(), ONE_WARP,
                          mode="baseline")
        assert result.stats.renaming_conflict_cycles == 0
