"""Property-based differential tests on randomly generated kernels.

A hypothesis strategy generates structured kernels (straight-line ALU
chains, data-dependent if/else divergence, bounded loops, loads and
stores) and every generated kernel is run under all three register
management modes. The invariants:

* all modes execute the identical dynamic instruction stream,
* the compiler's release plan is sound: the renaming table's strict
  use-after-release detector never fires (a premature release would
  lose a live value on real hardware),
* register conservation: at completion every physical register is free,
* the flags mode never exceeds the baseline's peak register footprint.

This is the deepest check of the whole stack: the CFG builder,
postdominators, liveness, hoisting, flag encoding, SIMT stack, and
renaming all have to agree for these to hold.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.arch import GPUConfig
from repro.compiler import compile_kernel
from repro.isa import CmpOp, KernelBuilder, Special
from repro.launch import LaunchConfig
from repro.sim import simulate

#: Application registers (loop counters/predicates live above these).
APP_REGS = 6
COUNTER0 = APP_REGS
COUNTER1 = APP_REGS + 1

LAUNCH = LaunchConfig(grid_ctas=16, threads_per_cta=64, conc_ctas_per_sm=2)

# --- kernel specification strategy ------------------------------------------

app_reg = st.integers(0, APP_REGS - 1)

simple_op = st.one_of(
    st.tuples(st.just("alu"), app_reg, app_reg, app_reg),
    st.tuples(st.just("movi"), app_reg, st.integers(0, 255)),
    st.tuples(st.just("load"), app_reg, app_reg),
    st.tuples(st.just("store"), app_reg, app_reg),
)

block = st.lists(simple_op, min_size=1, max_size=6)

branch_item = st.tuples(
    st.just("if"),
    st.integers(1, 62),  # tid threshold: divergence within warps
    block,  # then
    block,  # else
)

loop_item = st.tuples(
    st.just("loop"),
    st.integers(1, 3),  # trip count
    st.lists(st.one_of(simple_op, branch_item), min_size=1, max_size=5),
)

kernel_spec = st.lists(
    st.one_of(simple_op, branch_item, loop_item),
    min_size=1,
    max_size=6,
)


def _emit_op(b: KernelBuilder, op, guard_free_pred: int) -> None:
    kind = op[0]
    if kind == "alu":
        _, dst, a, c = op
        b.iadd(dst, a, c)
    elif kind == "movi":
        _, dst, imm = op
        b.movi(dst, imm)
    elif kind == "load":
        _, dst, addr = op
        b.ldg(dst, addr=addr, offset=0x1000)
    elif kind == "store":
        _, addr, value = op
        b.stg(addr=addr, value=value, offset=0x8000)
    elif kind == "if":
        _, threshold, then_ops, else_ops = op
        pred = guard_free_pred
        b.s2r(APP_REGS + 2, Special.LANEID)
        b.setp(pred, APP_REGS + 2, CmpOp.LT, imm=threshold)
        then_label = b.fresh_label()
        merge = b.fresh_label()
        b.bra(then_label, pred=pred)
        for inner in else_ops:
            _emit_op(b, inner, guard_free_pred + 1)
        b.bra(merge)
        b.place(then_label)
        for inner in then_ops:
            _emit_op(b, inner, guard_free_pred + 1)
        b.place(merge)
        b.nop()  # guarantees the merge label lands on an instruction
    elif kind == "loop":
        _, trips, body = op
        counter = COUNTER1 if guard_free_pred > 1 else COUNTER0
        pred = guard_free_pred
        b.movi(counter, trips)
        top = b.label()
        for inner in body:
            _emit_op(b, inner, guard_free_pred + 1)
        b.iaddi(counter, counter, -1)
        b.setp(pred, counter, CmpOp.GT, imm=0)
        b.bra(top, pred=pred)
    else:  # pragma: no cover
        raise AssertionError(kind)


def build_kernel(spec) -> "Kernel":
    b = KernelBuilder("random", num_preds=8)
    b.s2r(0, Special.TID)
    for op in spec:
        _emit_op(b, op, guard_free_pred=1)
    b.stg(addr=0, value=1, offset=0x20000)
    b.exit()
    return b.build()


def run_all_modes(kernel):
    base = simulate(
        kernel.clone(), LAUNCH, GPUConfig.baseline(), mode="baseline",
        max_ctas_per_sm_sim=2,
    )
    config = GPUConfig.renamed()
    compiled = compile_kernel(kernel, LAUNCH, config)
    flags = simulate(
        compiled.kernel, LAUNCH, config, mode="flags",
        threshold=compiled.renaming_threshold, max_ctas_per_sm_sim=2,
    )
    redefine = simulate(
        kernel.clone(), LAUNCH, GPUConfig.renamed(), mode="redefine",
        max_ctas_per_sm_sim=2,
    )
    return base, flags, redefine


SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@SETTINGS
@given(kernel_spec)
def test_modes_execute_identical_instruction_streams(spec):
    kernel = build_kernel(spec)
    base, flags, redefine = run_all_modes(kernel)
    assert base.instructions == flags.instructions
    assert base.instructions == redefine.instructions
    assert base.stats.warps_completed == flags.stats.warps_completed


@SETTINGS
@given(kernel_spec)
def test_release_plan_is_sound_and_registers_conserve(spec):
    """Strict use-after-release detection is active inside simulate();
    reaching the assertions means no unsound release fired."""
    kernel = build_kernel(spec)
    config = GPUConfig.renamed()
    compiled = compile_kernel(kernel, LAUNCH, config)
    result = simulate(
        compiled.kernel, LAUNCH, config, mode="flags",
        threshold=compiled.renaming_threshold, max_ctas_per_sm_sim=2,
    )
    stats = result.stats
    # Conservation: everything allocated was eventually released.
    assert stats.registers_allocated_events == \
        stats.registers_released_events
    assert stats.max_live_registers <= stats.max_architected_allocated


@SETTINGS
@given(kernel_spec)
def test_flags_mode_never_needs_more_registers_than_baseline(spec):
    kernel = build_kernel(spec)
    base, flags, _ = run_all_modes(kernel)
    assert (
        flags.stats.max_live_registers
        <= base.stats.max_live_registers
    )


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(kernel_spec)
def test_gpu_shrink_runs_every_random_kernel(spec):
    """Random kernels complete on a half-size file with no deadlock."""
    kernel = build_kernel(spec)
    config = GPUConfig.shrunk(0.5)
    compiled = compile_kernel(kernel, LAUNCH, config)
    result = simulate(
        compiled.kernel, LAUNCH, config, mode="flags",
        threshold=compiled.renaming_threshold, max_ctas_per_sm_sim=2,
    )
    assert result.stats.ctas_completed == result.ctas_simulated
    assert result.stats.max_live_registers <= 512


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(kernel_spec)
def test_gating_does_not_change_execution(spec):
    kernel = build_kernel(spec)
    config = GPUConfig.renamed()
    compiled = compile_kernel(kernel, LAUNCH, config)
    plain = simulate(
        compiled.kernel.clone(), LAUNCH, config, mode="flags",
        threshold=compiled.renaming_threshold, max_ctas_per_sm_sim=2,
    )
    gated_config = GPUConfig.renamed(
        gating_enabled=True, wakeup_latency_cycles=0
    )
    gated = simulate(
        compiled.kernel.clone(), LAUNCH, gated_config, mode="flags",
        threshold=compiled.renaming_threshold, max_ctas_per_sm_sim=2,
    )
    assert plain.instructions == gated.instructions
    # With zero wake-up latency, gating is timing-invisible.
    assert plain.cycles == gated.cycles


@SETTINGS
@given(kernel_spec)
def test_dump_assemble_roundtrip(spec):
    """Every generated kernel's disassembly re-assembles to an
    equivalent kernel (same opcodes, operands, and branch structure)."""
    from repro.isa import assemble

    kernel = build_kernel(spec)
    again = assemble(kernel.dump())
    assert len(again) == len(kernel)
    for a, b in zip(again.instructions, kernel.instructions):
        assert a.opcode is b.opcode
        assert a.srcs == b.srcs
        assert a.dst == b.dst
        assert a.imm == b.imm
        assert a.target_pc == b.target_pc


@SETTINGS
@given(kernel_spec)
def test_timing_invariants(spec):
    """Issue accounting is self-consistent: cycles bound the issue
    bandwidth, and every issued instruction is a regular instruction or
    a decoded metadata word."""
    kernel = build_kernel(spec)
    config = GPUConfig.renamed()
    compiled = compile_kernel(kernel, LAUNCH, config)
    result = simulate(
        compiled.kernel, LAUNCH, config, mode="flags",
        threshold=compiled.renaming_threshold, max_ctas_per_sm_sim=2,
    )
    stats = result.stats
    assert stats.issued == (
        stats.instructions + stats.pir_decoded + stats.pbr_decoded
    )
    # Dual issue: at most two instructions per cycle.
    assert stats.issued <= 2 * stats.cycles
    # Flag-cache accounting: every pir fetch is a hit or a miss.
    assert stats.pir_skipped == stats.flag_cache_hits
    assert stats.pir_decoded <= stats.flag_cache_misses


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(kernel_spec, st.sampled_from(["loose_rr", "gto"]))
def test_scheduler_policies_preserve_function(spec, policy):
    """Alternative warp schedulers change timing, never results."""
    kernel = build_kernel(spec)
    reference = simulate(
        kernel.clone(), LAUNCH, GPUConfig.baseline(), mode="baseline",
        max_ctas_per_sm_sim=2,
    )
    config = GPUConfig.baseline(scheduler_policy=policy)
    other = simulate(
        kernel.clone(), LAUNCH, config, mode="baseline",
        max_ctas_per_sm_sim=2,
    )
    assert other.instructions == reference.instructions
    assert other.stats.warps_completed == reference.stats.warps_completed


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(kernel_spec)
def test_rfc_preserves_function_and_reduces_traffic(spec):
    kernel = build_kernel(spec)
    plain = simulate(
        kernel.clone(), LAUNCH, GPUConfig.baseline(), mode="baseline",
        max_ctas_per_sm_sim=2,
    )
    config = GPUConfig.baseline(rfc_entries_per_warp=6)
    cached = simulate(
        kernel.clone(), LAUNCH, config, mode="baseline",
        max_ctas_per_sm_sim=2,
    )
    assert cached.instructions == plain.instructions
    plain_mrf = plain.stats.rf_reads + plain.stats.rf_writes
    cached_mrf = cached.stats.rf_reads + cached.stats.rf_writes
    assert cached_mrf <= plain_mrf


# --- brute-force liveness cross-check (acyclic kernels) ---------------------

acyclic_spec = st.lists(
    st.one_of(simple_op, branch_item), min_size=1, max_size=5
)


def _brute_force_live_out(kernel, pc: int) -> set[int]:
    """Liveness by enumerating every acyclic path from ``pc``.

    A register is live-out of ``pc`` iff some path from pc+1 (or the
    branch successors) reads it before writing it.
    """
    instructions = kernel.instructions

    def successors(index):
        inst = instructions[index]
        if inst.info.is_exit:
            return []
        if inst.is_branch:
            if inst.guard is None:
                return [inst.target_pc]
            return [inst.target_pc, index + 1]
        return [index + 1]

    live = set()
    stack = [(succ, frozenset()) for succ in successors(pc)]
    seen = set()
    while stack:
        index, written = stack.pop()
        key = (index, written)
        if key in seen:
            continue
        seen.add(key)
        inst = instructions[index]
        for reg in inst.srcs:
            if reg not in written:
                live.add(reg)
        new_written = written
        if inst.dst is not None:
            new_written = written | {inst.dst}
        for succ in successors(index):
            stack.append((succ, new_written))
    return live


@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(acyclic_spec)
def test_dataflow_liveness_matches_brute_force(spec):
    from repro.compiler.cfg import ControlFlowGraph
    from repro.compiler.liveness import LivenessAnalysis

    kernel = build_kernel(spec)
    cfg = ControlFlowGraph(kernel)
    liveness = LivenessAnalysis(cfg)
    for pc in range(len(kernel.instructions)):
        if kernel.instructions[pc].info.is_exit:
            continue
        assert liveness.live_out(pc) == _brute_force_live_out(kernel, pc), (
            f"pc {pc}: {kernel.dump()}"
        )
