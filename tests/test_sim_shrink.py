"""GPU-shrink (Section 8.1) corner-case coverage.

Exercises the under-provisioned register file end to end: the
spill → fill round trip with its hysteresis margin, CTA throttling
picking the minimum-balance CTA, and the deadlock guard when the
spill escape hatch is disabled.
"""

import pytest

from repro.arch import GPUConfig
from repro.compiler import compile_kernel
from repro.errors import DeadlockError
from repro.isa import KernelBuilder, Special
from repro.launch import LaunchConfig
from repro.sim import simulate
from repro.sim.core import FILL_HYSTERESIS, SMCore, _Issue
from repro.sim.memory import GlobalMemory
from repro.sim.warp import WarpStatus


def pressure_kernel(num_regs=24):
    """Many live registers held across a long-latency load."""
    b = KernelBuilder("pressure")
    b.s2r(0, Special.TID)
    for reg in range(1, num_regs):
        b.iadd(reg, 0, 0)
    b.ldg(0, addr=0)
    for reg in range(1, num_regs):
        b.iadd(0, 0, reg)
    b.stg(addr=0, value=0)
    b.exit()
    return b.build()


def make_core(kernel, launch, config, mode="redefine", threshold=0):
    core = SMCore(config, kernel, launch, mode=mode, threshold=threshold,
                  gmem=GlobalMemory())
    core.cta_queue = list(range(launch.grid_ctas))
    return core


def drain_regfile(core, leave_free=0):
    """Directly allocate registers until only ``leave_free`` remain."""
    fillers = []
    while core.regfile.free_count > leave_free:
        result = core.regfile.allocate(0, 0)
        assert result is not None
        fillers.append(result[0])
    return fillers


class TestSpillFillRoundTrip:
    def test_fill_waits_for_hysteresis_headroom(self):
        launch = LaunchConfig(1, 64, conc_ctas_per_sm=1)
        core = make_core(pressure_kernel(8), launch, GPUConfig.shrunk(0.125))
        core._launch_ctas(0)
        warp = core.resident[0].warps[0]
        for arch in range(4):
            assert core.renaming.write(warp.slot, arch, 0) is not None

        regs = core.renaming.spill_warp(warp.slot, 0)
        assert regs == (0, 1, 2, 3)
        warp.spilled_regs = regs
        warp.status = WarpStatus.SPILLED

        # One register short of len(regs) + FILL_HYSTERESIS: no fill.
        fillers = drain_regfile(
            core, leave_free=len(regs) + FILL_HYSTERESIS - 1
        )
        core._fill_spilled(0)
        assert core.stats.fill_events == 0
        assert warp.status is WarpStatus.SPILLED

        # Free one more: the hysteresis margin is met and the fill runs.
        core.regfile.free(fillers.pop(), 0)
        core._fill_spilled(0)
        assert core.stats.fill_events == 1
        assert warp.status is WarpStatus.FILLING
        core._process_events(core.config.spill_latency + len(regs) + 1)
        assert warp.status is WarpStatus.ACTIVE
        assert warp.spilled_regs == ()

    def test_round_trip_preserves_functional_results(self):
        """A run forced through spill/fill stores the same words as an
        identical run on a full-size file."""
        kernel = pressure_kernel(num_regs=40)
        launch = LaunchConfig(1, 128, conc_ctas_per_sm=1)

        def stored_words(config):
            compiled = compile_kernel(kernel.clone(), launch, config)
            from repro.sim.gpu import GPU

            gpu = GPU(config, compiled.kernel, launch, mode="flags",
                      threshold=compiled.renaming_threshold)
            result = gpu.run()
            return result.stats, gpu.gmem.image()

        shrunk_stats, shrunk_words = stored_words(GPUConfig.shrunk(0.125))
        _, full_words = stored_words(GPUConfig.renamed())
        assert shrunk_stats.spill_events > 0
        assert shrunk_stats.fill_events > 0
        assert shrunk_stats.spilled_registers > 0
        assert shrunk_words == full_words


class TestThrottle:
    def test_throttle_restricts_to_min_balance_cta(self):
        launch = LaunchConfig(2, 64, conc_ctas_per_sm=2)
        core = make_core(pressure_kernel(8), launch, GPUConfig.shrunk(0.125))
        core._launch_ctas(0)
        assert len(core.resident) == 2
        cta_a, cta_b = core.resident

        # cta_b has almost exhausted its worst-case demand C: its
        # balance C - k is the minimum, so it must get the register.
        core.renaming.cta_assigned[cta_b.uid] = cta_b.required_regs - 1
        core.renaming.cta_allocated[cta_b.uid] = cta_b.required_regs - 1
        drain_regfile(core, leave_free=1)

        assert core._throttle() == cta_b.uid
        assert core.stats.throttle_activations == 1

    def test_activations_count_transitions_not_cycles(self):
        """A sustained restriction is one activation but many
        throttled cycles; a deactivation re-arms the counter."""
        launch = LaunchConfig(2, 64, conc_ctas_per_sm=2)
        core = make_core(pressure_kernel(8), launch, GPUConfig.shrunk(0.125))
        core._launch_ctas(0)
        cta_b = core.resident[1]
        core.renaming.cta_assigned[cta_b.uid] = cta_b.required_regs - 1
        core.renaming.cta_allocated[cta_b.uid] = cta_b.required_regs - 1
        fillers = drain_regfile(core, leave_free=1)

        for _ in range(5):
            assert core._throttle() == cta_b.uid
        assert core.stats.throttle_activations == 1
        assert core.stats.throttle_cycles == 5

        # Headroom returns: the restriction lifts without counting.
        for phys in fillers[:8]:
            core.regfile.free(phys, 0)
        assert core._throttle() is None
        assert core.stats.throttle_activations == 1

        # Pressure resumes: a second transition, cycles keep summing.
        drain_regfile(core, leave_free=1)
        assert core._throttle() == cta_b.uid
        assert core.stats.throttle_activations == 2
        assert core.stats.throttle_cycles == 6

    def test_throttle_inactive_with_headroom(self):
        launch = LaunchConfig(2, 64, conc_ctas_per_sm=2)
        core = make_core(pressure_kernel(8), launch, GPUConfig.shrunk(0.125))
        core._launch_ctas(0)
        assert core._throttle() is None
        assert core.stats.throttle_activations == 0

    def test_forbidden_warp_cannot_allocate(self):
        launch = LaunchConfig(2, 64, conc_ctas_per_sm=2)
        core = make_core(pressure_kernel(8), launch, GPUConfig.shrunk(0.125))
        core._launch_ctas(0)
        warp = core.resident[0].warps[0]
        # First instruction writes r0, which is unmapped: under a
        # throttle restriction the allocation is forbidden outright.
        assert core._try_issue(warp, 0, forbid_alloc=True) \
            is _Issue.FORBIDDEN
        # Without the restriction the same issue succeeds.
        assert core._try_issue(warp, 0, forbid_alloc=False) \
            is _Issue.ISSUED


class TestDeadlockGuard:
    def test_deadlock_when_spill_disabled(self):
        kernel = pressure_kernel(num_regs=40)
        # One CTA of 4 warps x 40 regs = 160 > 128 physical registers:
        # without the spill escape hatch no warp can make progress.
        launch = LaunchConfig(1, 128, conc_ctas_per_sm=1)
        config = GPUConfig.shrunk(0.125)
        compiled = compile_kernel(kernel, launch, config)
        with pytest.raises(DeadlockError):
            simulate(compiled.kernel, launch, config, mode="flags",
                     threshold=compiled.renaming_threshold,
                     spill_enabled=False)

    def test_spill_enabled_resolves_same_scenario(self):
        kernel = pressure_kernel(num_regs=40)
        launch = LaunchConfig(1, 128, conc_ctas_per_sm=1)
        config = GPUConfig.shrunk(0.125)
        compiled = compile_kernel(kernel, launch, config)
        result = simulate(compiled.kernel, launch, config, mode="flags",
                          threshold=compiled.renaming_threshold,
                          spill_enabled=True)
        assert result.stats.ctas_completed == 1
        assert result.stats.spill_events > 0
