"""Physical register file tests: allocation, gating, accounting."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch import GPUConfig
from repro.errors import RegisterFileError
from repro.sim.regfile import PhysicalRegisterFile
from repro.sim.stats import SimStats


def make_regfile(**overrides):
    config = GPUConfig.renamed(**overrides)
    stats = SimStats()
    return PhysicalRegisterFile(config, stats), stats


class TestAllocation:
    def test_allocate_in_preferred_bank(self):
        regfile, _ = make_regfile()
        phys, penalty = regfile.allocate(bank=2, now=0)
        assert regfile.bank_of(phys) == 2
        assert penalty == 0  # gating disabled

    def test_lowest_row_first(self):
        regfile, _ = make_regfile()
        first, _ = regfile.allocate(0, 0)
        second, _ = regfile.allocate(0, 0)
        assert second == first + 1

    def test_free_then_reallocate_reuses_lowest(self):
        regfile, _ = make_regfile()
        first, _ = regfile.allocate(0, 0)
        regfile.allocate(0, 0)
        regfile.free(first, 0)
        again, _ = regfile.allocate(0, 0)
        assert again == first

    def test_bank_fallback_when_preferred_full(self):
        regfile, stats = make_regfile()
        for _ in range(regfile.regs_per_bank):
            regfile.allocate(0, 0)
        phys, _ = regfile.allocate(0, 0)
        assert regfile.bank_of(phys) != 0
        assert stats.bank_fallbacks == 1

    def test_exhaustion_returns_none(self):
        regfile, _ = make_regfile()
        for _ in range(regfile.total):
            assert regfile.allocate(0, 0) is not None
        assert regfile.allocate(0, 0) is None
        assert regfile.free_count == 0

    def test_double_free_rejected(self):
        regfile, _ = make_regfile()
        phys, _ = regfile.allocate(0, 0)
        regfile.free(phys, 0)
        with pytest.raises(RegisterFileError):
            regfile.free(phys, 0)

    def test_live_count_and_max(self):
        regfile, stats = make_regfile()
        regs = [regfile.allocate(0, 0)[0] for _ in range(5)]
        assert regfile.live_count == 5
        regfile.free(regs[0], 0)
        assert regfile.live_count == 4
        assert stats.max_live_registers == 5

    def test_touched_monotonic(self):
        regfile, stats = make_regfile()
        phys, _ = regfile.allocate(0, 0)
        regfile.free(phys, 0)
        regfile.allocate(0, 0)
        assert stats.physical_registers_touched == 1


class TestGating:
    def test_waking_dark_subarray_costs_latency(self):
        regfile, stats = make_regfile(
            gating_enabled=True, wakeup_latency_cycles=3
        )
        _, penalty = regfile.allocate(0, 0)
        assert penalty == 3
        assert stats.subarray_wakeups == 1

    def test_second_allocation_in_lit_subarray_is_free(self):
        regfile, stats = make_regfile(gating_enabled=True)
        regfile.allocate(0, 0)
        _, penalty = regfile.allocate(0, 0)
        assert penalty == 0
        assert stats.subarray_wakeups == 1

    def test_consolidation_prefers_lit_subarrays(self):
        regfile, stats = make_regfile(gating_enabled=True)
        allocated = [regfile.allocate(0, 0)[0] for _ in range(10)]
        subarrays = {
            (p % regfile.regs_per_bank) // regfile.regs_per_subarray
            for p in allocated
        }
        assert subarrays == {0}

    def test_subarray_powers_off_when_empty(self):
        regfile, stats = make_regfile(gating_enabled=True)
        phys, _ = regfile.allocate(0, 0)
        regfile.free(phys, 5)
        _, penalty = regfile.allocate(0, 10)
        assert penalty > 0  # had to wake again
        assert stats.subarray_wakeups == 2

    def test_active_cycles_integral(self):
        regfile, stats = make_regfile(gating_enabled=True)
        phys, _ = regfile.allocate(0, 0)
        regfile.free(phys, 100)
        regfile.finalize(200)
        # One subarray powered for cycles 0..100 only.
        assert stats.subarray_active_cycles == pytest.approx(100)

    def test_no_gating_all_subarrays_always_on(self):
        regfile, stats = make_regfile(gating_enabled=False)
        regfile.finalize(100)
        assert stats.subarray_active_cycles == pytest.approx(
            100 * regfile.config.total_subarrays
        )


class TestAccessAccounting:
    def test_reads_and_writes_counted_per_bank(self):
        regfile, stats = make_regfile()
        phys, _ = regfile.allocate(1, 0)
        regfile.read(phys)
        regfile.read(phys)
        regfile.write(phys)
        assert stats.rf_reads == 2
        assert stats.rf_writes == 1
        assert stats.rf_bank_accesses[1] == 3


class TestShrunkGeometry:
    def test_shrunk_file_has_half_capacity(self):
        config = GPUConfig.shrunk(0.5)
        regfile = PhysicalRegisterFile(config, SimStats())
        assert regfile.total == 512
        count = 0
        while regfile.allocate(count % 4, 0) is not None:
            count += 1
        assert count == 512


class TestInvariants:
    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.integers(0, 3), min_size=1, max_size=120))
    def test_alloc_free_conservation(self, banks):
        """Allocate per the random bank sequence, free everything:
        the file must return to fully free with unique physical ids."""
        regfile, _ = make_regfile(gating_enabled=True)
        allocated = []
        for bank in banks:
            result = regfile.allocate(bank, 0)
            assert result is not None
            allocated.append(result[0])
        assert len(set(allocated)) == len(allocated)
        assert regfile.free_count == regfile.total - len(allocated)
        for phys in allocated:
            regfile.free(phys, 0)
        assert regfile.free_count == regfile.total
        assert regfile.live_count == 0


class TestScatterPolicy:
    def test_scatter_spreads_across_subarrays(self):
        regfile, _ = make_regfile(
            gating_enabled=True, allocation_policy="scatter"
        )
        allocated = [regfile.allocate(0, 0)[0] for _ in range(8)]
        subarrays = {
            (p % regfile.regs_per_bank) // regfile.regs_per_subarray
            for p in allocated
        }
        assert len(subarrays) == regfile.subs_per_bank

    def test_scatter_wakes_more_subarrays(self):
        packed, packed_stats = make_regfile(gating_enabled=True)
        spread, spread_stats = make_regfile(
            gating_enabled=True, allocation_policy="scatter"
        )
        for _ in range(8):
            packed.allocate(0, 0)
            spread.allocate(0, 0)
        assert spread_stats.subarray_wakeups > packed_stats.subarray_wakeups
