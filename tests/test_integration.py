"""Cross-cutting integration tests."""

import pytest

from repro.arch import GPUConfig
from repro.compiler import compile_kernel
from repro.launch import LaunchConfig
from repro.sim import simulate
from repro.sim.core import SMCore
from repro.workloads import get_workload


class TestDeterminism:
    def test_identical_runs_produce_identical_stats(self):
        workload = get_workload("reduction", scale=0.5)
        config = GPUConfig.shrunk(0.5, gating_enabled=True)

        def run():
            compiled = compile_kernel(
                workload.kernel, workload.launch, config
            )
            return simulate(
                compiled.kernel, workload.launch, config, mode="flags",
                threshold=compiled.renaming_threshold,
                max_ctas_per_sm_sim=2,
            ).stats

        first, second = run(), run()
        for field in ("cycles", "instructions", "rf_reads", "rf_writes",
                      "max_live_registers", "pir_decoded", "pbr_decoded",
                      "registers_allocated_events", "subarray_wakeups"):
            assert getattr(first, field) == getattr(second, field), field


class TestCtaTurnover:
    def test_warp_slots_recycle_across_waves(self):
        """More CTAs than residency: slots and registers are reused
        wave after wave with full cleanup in between."""
        workload = get_workload("matrixmul", scale=0.25)
        config = GPUConfig.renamed()
        compiled = compile_kernel(workload.kernel, workload.launch, config)
        core = SMCore(config, compiled.kernel, workload.launch,
                      mode="flags",
                      threshold=compiled.renaming_threshold)
        core.cta_queue = list(range(12))  # 2 waves of 6
        core.run()
        assert core.stats.ctas_completed == 12
        assert core.regfile.live_count == 0
        assert core.regfile.free_count == core.regfile.total
        assert len(core._free_warp_slots) == config.max_warps_per_sm


class TestCombinedMechanisms:
    def test_shrink_gating_throttle_spill_coexist(self):
        """Every proposed mechanism active at once on a pressured
        kernel: must complete with conserved registers."""
        from repro.isa import KernelBuilder, Special

        b = KernelBuilder("pressure")
        b.s2r(0, Special.TID)
        for reg in range(1, 36):
            b.iadd(reg, 0, 0)
        b.ldg(0, addr=0)
        for reg in range(1, 36):
            b.iadd(0, 0, reg)
        b.stg(addr=0, value=0)
        b.exit()
        kernel = b.build()
        launch = LaunchConfig(32, 128, conc_ctas_per_sm=2)
        config = GPUConfig.shrunk(0.25, gating_enabled=True)
        compiled = compile_kernel(kernel, launch, config)
        result = simulate(
            compiled.kernel, launch, config, mode="flags",
            threshold=compiled.renaming_threshold, max_ctas_per_sm_sim=2,
        )
        stats = result.stats
        assert stats.ctas_completed == 2
        assert stats.registers_allocated_events == \
            stats.registers_released_events
        assert stats.max_live_registers <= 256
        assert stats.subarray_wakeups > 0

    def test_occupancy_map_consistent_with_live_count(self):
        workload = get_workload("matrixmul", scale=0.5)
        config = GPUConfig.renamed(gating_enabled=True)
        compiled = compile_kernel(workload.kernel, workload.launch, config)
        core = SMCore(config, compiled.kernel, workload.launch,
                      mode="flags",
                      threshold=compiled.renaming_threshold)
        core.cta_queue = [0, 1]
        for _ in range(500):
            if core.done():
                break
            core.tick()
        occupancy = core.regfile.occupancy_map()
        total_occupied = sum(
            occupied for bank in occupancy for occupied, _ in bank
        )
        assert total_occupied == core.regfile.live_count
        for bank in occupancy:
            for occupied, powered in bank:
                if occupied:
                    assert powered  # occupied sub-arrays must be on


class TestSweepInvariants:
    @pytest.mark.parametrize("fraction", [1.0, 0.75, 0.5, 0.375])
    def test_shrink_sweep_monotone_capacity(self, fraction):
        workload = get_workload("hotspot", scale=0.25)
        config = GPUConfig.shrunk(fraction)
        compiled = compile_kernel(workload.kernel, workload.launch, config)
        result = simulate(
            compiled.kernel, workload.launch, config, mode="flags",
            threshold=compiled.renaming_threshold, max_ctas_per_sm_sim=1,
        )
        assert result.stats.max_live_registers <= \
            config.total_physical_registers
        assert result.stats.ctas_completed >= 1

    def test_flag_cache_sweep_monotone_decodes(self):
        workload = get_workload("matrixmul", scale=0.5)
        decodes = []
        for entries in (0, 2, 10):
            config = GPUConfig.renamed(
                release_flag_cache_entries=entries
            )
            compiled = compile_kernel(
                workload.kernel, workload.launch, config
            )
            result = simulate(
                compiled.kernel, workload.launch, config, mode="flags",
                threshold=compiled.renaming_threshold,
                max_ctas_per_sm_sim=1,
            )
            decodes.append(result.stats.pir_decoded)
        assert decodes[0] >= decodes[1] >= decodes[2]
