"""Sweep planner and deduplicating run_sweep tests.

Pin the tentpole invariant: across a runner invocation, every unique
simulation executes exactly once — duplicated specs fan the shared
result back, experiments replay from the cache the planner warmed, and
a second invocation against the same cache directory is pure hits.
"""

from __future__ import annotations

import pytest

import repro.analysis.runners as runners
from repro.analysis.runners import run_sweep, spec_fingerprint
from repro.arch import GPUConfig
from repro.cache import ResultCache, configure_cache, swap_cache
from repro.experiments.planner import collect_plan, execute_plan
from repro.experiments.registry import EXPERIMENTS, get_flows
from repro.experiments.runner import main as runner_main
from repro.workloads.suite import get_workload


class TestSpecFingerprint:
    def test_defaults_normalize_before_hashing(self):
        workload = get_workload("vectoradd", scale=0.5)
        implicit = ("baseline", workload, {})
        explicit = (
            "baseline", workload,
            {"config": GPUConfig.baseline(), "waves": 2},
        )
        assert spec_fingerprint(implicit) == spec_fingerprint(explicit)
        different = (
            "baseline", workload, {"config": GPUConfig.renamed()}
        )
        assert spec_fingerprint(implicit) != spec_fingerprint(different)

    def test_flows_differ(self):
        workload = get_workload("vectoradd", scale=0.5)
        assert spec_fingerprint(
            ("baseline", workload, {})
        ) != spec_fingerprint(("virtualized", workload, {}))


class TestRunSweepDedup:
    def test_duplicates_run_once_and_fan_back(self, monkeypatch):
        configure_cache()  # fresh memory cache for the flows
        workload = get_workload("vectoradd", scale=0.5)
        calls = []
        original = runners.FLOWS["baseline"]

        def counting(workload, **kwargs):
            calls.append(kwargs)
            return original(workload, **kwargs)

        monkeypatch.setitem(runners.FLOWS, "baseline", counting)
        specs = [
            ("baseline", workload, {}),
            ("virtualized", workload, {}),
            ("baseline", workload, {"config": GPUConfig.baseline()}),
            ("baseline", workload, {"waves": 2}),
        ]
        results = run_sweep(specs)
        assert len(calls) == 1
        assert results[0] is results[2] is results[3]
        assert results[1] is not results[0]
        assert results[0].stats == original(workload).stats

    def test_order_preserved_with_jobs(self):
        configure_cache()
        workloads = [
            get_workload(name, scale=0.5)
            for name in ("vectoradd", "bfs")
        ]
        specs = [
            ("baseline", workloads[0], {}),
            ("baseline", workloads[1], {}),
            ("baseline", workloads[0], {}),  # duplicate of position 0
        ]
        results = run_sweep(specs, jobs=2)
        assert results[0].workload.name == "vectoradd"
        assert results[1].workload.name == "bfs"
        assert results[0].stats == results[2].stats

    def test_parallel_workers_export_into_parent_cache(self):
        cache = configure_cache()
        workloads = [
            get_workload(name, scale=0.5)
            for name in ("vectoradd", "bfs")
        ]
        specs = [("baseline", w, {}) for w in workloads]
        run_sweep(specs, jobs=2)
        # The parent never simulated, but absorbed both entries: a
        # replay is all hits, no misses.
        before = cache.counters.misses
        run_sweep(specs, jobs=1)
        assert cache.counters.misses == before


class TestPlanner:
    def test_flows_declarations_cover_runs(self):
        """Warm the plan, replay the experiment: zero new misses."""
        options = {
            "scale": 0.5, "waves": 1, "workloads": ("vectoradd", "bfs"),
        }
        for name in ("fig10", "fig11b", "fig15", "schedulers", "rfc"):
            cache = configure_cache()
            plan = collect_plan([name], options)
            assert plan.planned == [name]
            assert plan.unique, name
            execute_plan(plan, jobs=1)
            misses_after_plan = cache.counters.misses
            EXPERIMENTS[name](**options)
            assert cache.counters.misses == misses_after_plan, (
                f"{name}: run() simulated something flows() did not "
                "declare"
            )

    def test_plan_dedupes_across_experiments(self):
        configure_cache()
        options = {
            "scale": 0.5, "waves": 1, "workloads": ("vectoradd",),
        }
        # fig10 and fig14 both request the plain virtualized run.
        plan = collect_plan(["fig10", "fig14"], options)
        assert len(plan.declared) > len(plan.unique)
        assert plan.dedup_ratio > 1.0
        assert "dedup" in plan.describe()

    def test_analytic_experiments_have_no_flows(self):
        assert get_flows("table01") is None
        plan = collect_plan(["table01"], {})
        assert plan.unique == []
        assert plan.unplanned == ["table01"]
        assert plan.dedup_ratio == 1.0

    def test_every_simulating_experiment_declares_flows(self):
        # Experiments built on the canonical flows must declare them,
        # or the planner silently degrades for those figures.
        for name in (
            "fig10", "fig11a", "fig11b", "fig12", "fig13", "fig14",
            "fig15", "ablations", "schedulers", "rfc",
        ):
            assert get_flows(name) is not None, name


class TestRunnerCli:
    def test_cold_then_warm_invocation(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        argv = ["--quick", "--cache-dir", cache_dir, "schedulers"]
        try:
            assert runner_main(argv) == 0
            cold_out = capsys.readouterr().out
            assert "plan:" in cold_out
            assert "cache:" in cold_out

            assert runner_main(argv) == 0
            warm_out = capsys.readouterr().out
            # Warm disk: nothing recomputed, nothing rewritten.
            assert "0 misses, 0 stores" in warm_out
            # The figures themselves must be unchanged.
            table = [
                line for line in cold_out.splitlines()
                if "two_level" in line
            ]
            assert table and all(
                line in warm_out for line in table
            )
        finally:
            swap_cache(None)

    def test_no_cache_flag(self, capsys):
        try:
            assert runner_main(
                ["--quick", "--no-cache", "fig07"]
            ) == 0
            out = capsys.readouterr().out
            assert "cache: disabled" in out
            assert "plan:" not in out
        finally:
            swap_cache(None)

    def test_env_opt_out(self, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_RESULT_CACHE", "0")
        try:
            assert runner_main(["--quick", "fig07"]) == 0
            assert "cache: disabled" in capsys.readouterr().out
        finally:
            swap_cache(None)

    def test_jobs_with_cache_uses_planner(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        try:
            assert runner_main(
                ["--quick", "--jobs", "2", "--cache-dir", cache_dir,
                 "schedulers"]
            ) == 0
            out = capsys.readouterr().out
            assert "plan:" in out
            assert "worker process" in out
        finally:
            swap_cache(None)
