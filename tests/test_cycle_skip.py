"""The cycle-skipping engine must be invisible: bit-identical stats.

``SMCore`` fast-forwards over dead cycles by default
(``REPRO_CYCLE_SKIP=1``); the strict per-cycle reference path stays
available behind ``REPRO_CYCLE_SKIP=0``. Every ``SimStats`` counter —
except the two engine diagnostics ``ticks_executed`` /
``skipped_cycles``, which *describe* how the result was computed —
must come out exactly equal on both paths, in every register mode
including deep GPU-shrink, composed with either decode path, serial
or parallel. These tests pin that 2x2 grid plus the flag plumbing.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.arch import GPUConfig
from repro.compiler import compile_kernel
from repro.parallel.worker import run_core_job
from repro.sim.gpu import GPU, simulate
from repro.workloads.suite import get_workload

MODES = ("baseline", "flags", "shrink")
#: Deep enough that the shrink leg throttles and spills, shallow
#: enough that every test workload still completes.
SHRINK_FRACTION = 0.2
#: (cycle-skip, decode-cache) environment grid.
GRID = tuple(
    (skip, cache) for skip in ("1", "0") for cache in ("1", "0")
)
#: Engine diagnostics: the only fields allowed to differ across the
#: grid (the per-cycle path executes every cycle, the skip engine
#: doesn't).
DIAGNOSTICS = frozenset({"ticks_executed", "skipped_cycles"})


def _comparable(result) -> dict:
    return {
        name: value
        for name, value in dataclasses.asdict(result.stats).items()
        if name not in DIAGNOSTICS
    }


def _simulate(name, mode, scale=0.5, fraction=SHRINK_FRACTION, waves=1,
              **kwargs):
    """One run of workload ``name`` under ``mode``.

    ``shrink`` is the flags flow compiled against a register file
    shrunk to ``fraction`` — the regime where throttle and spill
    windows dominate and the skip engine does real work.
    """
    workload = get_workload(name, scale=scale)
    opts = dict(
        max_ctas_per_sm_sim=waves * workload.table1.conc_ctas_per_sm
    )
    opts.update(kwargs)
    if mode in ("flags", "shrink"):
        config = (
            GPUConfig.shrunk(fraction)
            if mode == "shrink"
            else GPUConfig.renamed()
        )
        compiled = compile_kernel(workload.kernel, workload.launch, config)
        return simulate(
            compiled.kernel, workload.launch, config, mode="flags",
            threshold=compiled.renaming_threshold, **opts,
        )
    return simulate(
        workload.kernel.clone(), workload.launch, GPUConfig.baseline(),
        mode="baseline", **opts,
    )


class TestEquivalenceGrid:
    """2x2 ``REPRO_CYCLE_SKIP`` x ``REPRO_DECODE_CACHE`` grid."""

    @pytest.mark.parametrize("mode", MODES)
    def test_serial_grid_is_bit_identical(self, mode, monkeypatch):
        runs = {}
        for skip, cache in GRID:
            monkeypatch.setenv("REPRO_CYCLE_SKIP", skip)
            monkeypatch.setenv("REPRO_DECODE_CACHE", cache)
            runs[(skip, cache)] = _comparable(_simulate("matrixmul", mode))
        reference = runs[("0", "1")]
        for cell, stats in runs.items():
            assert stats == reference, f"grid cell {cell} diverged"

    @pytest.mark.parametrize("mode", MODES)
    def test_parallel_grid_is_bit_identical(self, mode, monkeypatch):
        """The process-pool engine (workers re-resolve both env flags
        and receive the parent's explicit choice via ``CoreJob``) must
        agree with the serial reference path cell by cell."""
        reference = None
        for skip, cache in GRID:
            monkeypatch.setenv("REPRO_CYCLE_SKIP", skip)
            monkeypatch.setenv("REPRO_DECODE_CACHE", cache)
            stats = _comparable(
                _simulate("matrixmul", mode, sim_sms=2,
                          max_ctas_per_sm_sim=2, jobs=2)
            )
            if reference is None:
                reference = _comparable(
                    _simulate("matrixmul", mode, sim_sms=2,
                              max_ctas_per_sm_sim=2)
                )
            assert stats == reference, f"grid cell {(skip, cache)} diverged"

    def test_spill_path_is_bit_identical(self, monkeypatch):
        """Deep shrink with spill/fill churn — the hardest timing path
        (spill trigger streaks must advance identically across jumps).
        """
        runs = {}
        for skip in ("1", "0"):
            monkeypatch.setenv("REPRO_CYCLE_SKIP", skip)
            result = _simulate("matrixmul", "shrink", scale=1.0,
                               fraction=0.18, waves=2)
            runs[skip] = (_comparable(result), result.stats.spill_events)
        assert runs["1"][1] > 0, "sample must actually exercise spills"
        assert runs["1"][0] == runs["0"][0]


class TestDiagnostics:
    def test_ticks_plus_skipped_covers_every_cycle(self):
        result = _simulate("matrixmul", "shrink", cycle_skip=True)
        stats = result.stats
        assert stats.skipped_cycles > 0
        assert stats.ticks_executed + stats.skipped_cycles == stats.cycles

    def test_per_cycle_path_skips_nothing(self):
        result = _simulate("matrixmul", "shrink", cycle_skip=False)
        assert result.stats.skipped_cycles == 0
        assert result.stats.ticks_executed == result.stats.cycles


class TestPlumbing:
    def _gpu(self, cycle_skip=None):
        workload = get_workload("matrixmul", scale=0.5)
        return GPU(
            GPUConfig.baseline(), workload.kernel.clone(), workload.launch,
            mode="baseline", max_ctas_per_sm_sim=1, cycle_skip=cycle_skip,
        )

    def test_env_flag_selects_engine(self, monkeypatch):
        monkeypatch.setenv("REPRO_CYCLE_SKIP", "0")
        assert self._gpu().cores[0].cycle_skip is False
        monkeypatch.delenv("REPRO_CYCLE_SKIP")
        assert self._gpu().cores[0].cycle_skip is True  # default on

    def test_explicit_argument_overrides_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_CYCLE_SKIP", "1")
        assert self._gpu(cycle_skip=False).cores[0].cycle_skip is False

    def test_core_job_carries_choice_across_process_boundary(
        self, monkeypatch
    ):
        """A parent's programmatic ``cycle_skip`` must survive into the
        worker even when the worker's environment says otherwise."""
        gpu = self._gpu(cycle_skip=False)
        (job,) = gpu._core_jobs(max_cycles=50_000_000,
                                gmem_image=gpu.gmem.image())
        assert job.cycle_skip is False
        monkeypatch.setenv("REPRO_CYCLE_SKIP", "1")  # worker-side env
        result = run_core_job(job)
        assert result.stats.skipped_cycles == 0
        assert result.stats.ticks_executed == result.stats.cycles
