"""SIMT reconvergence stack tests."""

import pytest

from repro.errors import SimulationError
from repro.sim.simt import SimtStack

FULL = 0xFFFFFFFF


def test_initial_state():
    stack = SimtStack(entry_pc=0, full_mask=FULL)
    assert stack.pc == 0
    assert stack.active_mask == FULL
    assert not stack.diverged
    assert stack.depth == 1


def test_uniform_taken_branch():
    stack = SimtStack(0, FULL)
    diverged = stack.branch(FULL, target_pc=10, fallthrough_pc=1,
                            reconv_pc=20)
    assert not diverged
    assert stack.pc == 10
    assert stack.depth == 1


def test_uniform_not_taken_branch():
    stack = SimtStack(0, FULL)
    diverged = stack.branch(0, 10, 1, 20)
    assert not diverged
    assert stack.pc == 1


def test_divergent_branch_executes_taken_first():
    stack = SimtStack(0, FULL)
    taken = 0x0000FFFF
    diverged = stack.branch(taken, 10, 1, 20)
    assert diverged
    assert stack.depth == 3
    assert stack.pc == 10
    assert stack.active_mask == taken


def test_reconvergence_restores_full_mask():
    stack = SimtStack(0, FULL)
    taken = 0x0000FFFF
    stack.branch(taken, 10, 1, 20)
    stack.pc = 20  # taken side reaches reconvergence
    stack.maybe_reconverge()
    assert stack.active_mask == FULL & ~taken  # fallthrough side
    assert stack.pc == 1
    stack.pc = 20
    stack.maybe_reconverge()
    assert stack.active_mask == FULL
    assert stack.pc == 20
    assert not stack.diverged


def test_nested_divergence():
    stack = SimtStack(0, FULL)
    stack.branch(0x0000FFFF, 10, 1, 40)
    stack.branch(0x000000FF, 20, 11, 30)
    assert stack.depth == 5
    assert stack.active_mask == 0x000000FF
    stack.pc = 30
    stack.maybe_reconverge()
    assert stack.active_mask == 0x0000FF00
    stack.pc = 30
    stack.maybe_reconverge()
    # Inner divergence fully reconverged: the outer taken entry now
    # continues from the inner reconvergence point with its full mask.
    assert stack.pc == 30
    assert stack.active_mask == 0x0000FFFF
    stack.pc = 40
    stack.maybe_reconverge()
    assert stack.active_mask == 0xFFFF0000  # outer fallthrough side


def test_taken_mask_must_be_subset():
    stack = SimtStack(0, 0x0F)
    with pytest.raises(SimulationError):
        stack.branch(0xF0, 10, 1, 20)


def test_exit_all_lanes_finishes_warp():
    stack = SimtStack(0, FULL)
    assert stack.exit_lanes(FULL)


def test_partial_exit_keeps_warp_alive():
    stack = SimtStack(0, FULL)
    assert not stack.exit_lanes(0x1)
    assert stack.active_mask == FULL & ~0x1


def test_exit_on_diverged_side_pops_to_sibling():
    stack = SimtStack(0, FULL)
    taken = 0x0000FFFF
    stack.branch(taken, 10, 1, 20)
    done = stack.exit_lanes(taken)
    assert not done
    assert stack.active_mask == FULL & ~taken
    assert stack.pc == 1


def test_exit_of_both_sides_finishes():
    stack = SimtStack(0, FULL)
    taken = 0x0000FFFF
    stack.branch(taken, 10, 1, 20)
    stack.exit_lanes(taken)
    assert stack.exit_lanes(FULL & ~taken)


def test_partial_warp_mask():
    stack = SimtStack(0, full_mask=(1 << 9) - 1)  # 9 active threads
    assert stack.active_mask == 0x1FF
