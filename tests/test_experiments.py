"""Experiment harness tests: every table/figure regenerates and its
headline claim holds in the reproduction (at reduced scale)."""

import pytest

from repro.errors import ConfigError
from repro.experiments import EXPERIMENTS, get_experiment

#: Small-but-meaningful settings shared by the heavier experiments.
QUICK = dict(scale=0.5, waves=1)
#: A representative workload subset for the expensive sweeps.
SUBSET = ("matrixmul", "vectoradd", "heartwall", "mum")


def test_registry_covers_every_table_and_figure():
    assert set(EXPERIMENTS) == {
        "table01", "table02", "fig01", "fig02", "fig07", "fig08",
        "fig09",
        "fig10", "fig11a", "fig11b", "fig12", "fig13", "fig14", "fig15",
        "ablations", "schedulers", "rfc",
    }


def test_unknown_experiment_rejected():
    with pytest.raises(ConfigError):
        get_experiment("fig99")


def test_table01_kernels_match():
    result = get_experiment("table01")()
    assert "16/16" in result.measured_summary
    assert all(cell == "yes" for cell in result.table.column("KernelRegsOK"))


def test_table02_parameters():
    result = get_experiment("table02")()
    text = result.table.render()
    assert "1.14 pJ" in text
    assert "4.68 pJ" in text


def test_fig01_live_fraction_below_half_for_most(capfd=None):
    result = get_experiment("fig01")(
        **QUICK, workloads=("matrixmul", "hotspot", "vectoradd")
    )
    means = dict(zip(result.table.column("Workload"),
                     result.table.column("MeanLive%")))
    assert means["matrixmul"] < 60.0
    assert means["hotspot"] < 60.0


def test_fig02_finds_three_shapes():
    result = get_experiment("fig02")(scale=0.5)
    shapes = set(result.table.column("Shape"))
    assert {"whole-kernel", "loop-pulsed", "short-lived"} <= shapes


def test_fig07_anchor():
    result = get_experiment("fig07")()
    last = result.table.rows[-1]
    assert last[0] == 50.0
    assert last[1] == pytest.approx(80.0, abs=0.5)
    assert last[3] == pytest.approx(70.0, abs=0.5)


def test_fig09_finfet_reset():
    result = get_experiment("fig09")()
    values = dict(zip(result.table.column("Technology"),
                      result.table.column("LeakageFraction")))
    assert values["22nm-F"] < values["22nm-P"]


def test_fig10_shape():
    result = get_experiment("fig10")(**QUICK, workloads=SUBSET)
    rows = {
        row[0]: row[4] for row in result.table.rows if row[0] != "AVG"
    }
    # Registers are saved everywhere; the short kernel saves least.
    assert all(value > 0 for value in rows.values())
    assert rows["vectoradd"] == min(rows.values())


def test_fig11a_shrink_beats_spill():
    result = get_experiment("fig11a")(
        **QUICK, workloads=("matrixmul", "vectoradd", "hotspot")
    )
    avg = result.table.rows[-1]
    assert avg[0] == "AVG"
    shrink_avg, spill_avg = avg[2], avg[3]
    assert shrink_avg < spill_avg
    assert shrink_avg < 10.0  # near-zero overhead
    rows = {row[0]: row for row in result.table.rows}
    # vectoradd fits the shrunk file: overhead is noise-level (the
    # fair round-robin pointer shifts interleavings by a fraction of
    # a percent), never the spill baseline's double-digit slowdown.
    assert rows["vectoradd"][2] == pytest.approx(0.0, abs=1.0)
    assert rows["vectoradd"][3] == pytest.approx(0.0, abs=1.0)


def test_fig11b_small_overhead():
    result = get_experiment("fig11b")(
        **QUICK, workloads=("matrixmul", "reduction")
    )
    for row in result.table.rows:
        assert row[1] < 1.05  # under 5% even at 10-cycle wake-up


def test_fig12_gated_shrink_saves_energy():
    result = get_experiment("fig12")(
        **QUICK, workloads=("matrixmul", "lib")
    )
    averages = {
        row[1]: row[6] for row in result.table.rows if row[0] == "AVG"
    }
    assert averages["64KB (50%) RF w/ PG"] < 1.0
    assert (
        averages["64KB (50%) RF w/ PG"] <= averages["64KB (50%) RF"]
    )


def test_fig13_cache_removes_dynamic_overhead():
    result = get_experiment("fig13")(
        **QUICK, workloads=("matrixmul", "vectoradd")
    )
    avg = result.table.rows[-1]
    dynamic0, dynamic10 = avg[2], avg[6]
    assert dynamic10 < dynamic0 / 2
    static = avg[1]
    assert 5.0 < static < 30.0


def test_fig14_exemptions():
    result = get_experiment("fig14")(
        **QUICK, workloads=("heartwall", "mum", "vectoradd")
    )
    exempt = dict(zip(result.table.column("Workload"),
                      result.table.column("Exempt/Total")))
    assert exempt["heartwall"] == "4/29"
    assert exempt["mum"] == "2/19"
    assert exempt["vectoradd"] == "0/4"
    savings = dict(zip(result.table.column("Workload"),
                       result.table.column("NormalizedSaving")))
    assert savings["heartwall"] > 0.9


def test_fig15_hardware_only_saves_less():
    result = get_experiment("fig15")(
        **QUICK, workloads=("matrixmul", "heartwall")
    )
    avg = result.table.rows[-1]
    norm_alloc, norm_static = avg[3], avg[4]
    assert norm_alloc < 1.0
    assert norm_static <= 1.05


def test_runner_main_quick(capsys):
    from repro.experiments.runner import main

    assert main(["--quick", "fig07"]) == 0
    out = capsys.readouterr().out
    assert "fig07" in out
    assert "paper:" in out


def test_schedulers_experiment_two_level_skews():
    result = get_experiment("schedulers")(
        scale=0.5, waves=1, workloads=("blackscholes", "lib")
    )
    reductions = {}
    for row in result.table.rows:
        reductions.setdefault(row[1], []).append(row[4])
    mean = {k: sum(v) / len(v) for k, v in reductions.items()}
    # Schedule skew feeds reuse: flat round-robin saves the least.
    assert mean["loose_rr"] <= mean["two_level"]


def test_rfc_experiment_story():
    result = get_experiment("rfc")(
        scale=0.5, waves=1, workloads=("blackscholes",)
    )
    rows = {row[1]: row for row in result.table.rows}
    rfc_row = rows["RFC-6"]
    base_row = rows["baseline"]
    shrink_row = rows["GPU-shrink+PG"]
    # RFC cuts MRF traffic but saves less total energy than GPU-shrink.
    assert rfc_row[2] < base_row[2]
    assert shrink_row[4] < rfc_row[4] < 1.001


def test_fig08_consolidation_frees_subarrays():
    result = get_experiment("fig08")(scale=0.5)
    grids = {}
    for row in result.table.rows:
        design = row[0]
        grids.setdefault(design, 0)
        grids[design] += sum(1 for cell in row[2:] if cell > 0)
    assert grids["w/ renaming"] < grids["w/o renaming"]


def test_experiment_render_includes_claims():
    result = get_experiment("fig07")()
    text = result.render()
    assert "[fig07]" in text
    assert "paper:" in text
    assert "measured:" in text


def test_runner_csv_export(tmp_path, capsys):
    from repro.experiments.runner import main

    assert main(["--quick", "--csv", str(tmp_path), "fig09"]) == 0
    files = list(tmp_path.glob("fig09*.csv"))
    assert files
    content = files[0].read_text()
    assert "Technology" in content
    capsys.readouterr()


def test_runner_chart_flag(capsys):
    from repro.experiments.runner import main

    assert main(["--quick", "--chart", "fig09"]) == 0
    out = capsys.readouterr().out
    assert "|#" in out or "#|" in out or "#" in out
