"""Postdominator and reconvergence analysis tests."""

from repro.compiler.cfg import ControlFlowGraph
from repro.compiler.dominators import PostDominators
from repro.isa import assemble


def analyze(src):
    cfg = ControlFlowGraph(assemble(src))
    return cfg, PostDominators(cfg)


DIAMOND = """
.kernel k
    S2R r0, SR_TID
    SETP p0, r0, 4, LT
    @p0 BRA then
    MOVI r1, 1
    BRA merge
then:
    MOVI r1, 2
merge:
    STG [r0], r1
    EXIT
"""


class TestDiamond:
    def test_reconvergence_is_merge_block(self, diamond_kernel):
        cfg = ControlFlowGraph(diamond_kernel)
        pdom = PostDominators(cfg)
        merge = cfg.block_of(diamond_kernel.labels["merge"]).index
        assert pdom.reconvergence_block(cfg.entry.index) == merge

    def test_merge_postdominates_everything(self):
        cfg, pdom = analyze(DIAMOND)
        merge = cfg.block_of(cfg.kernel.labels["merge"]).index
        for block in cfg.blocks:
            assert pdom.postdominates(merge, block.index) or \
                block.index == merge

    def test_sides_not_on_spine(self):
        cfg, pdom = analyze(DIAMOND)
        spine = pdom.unconditional_blocks()
        then_block = cfg.block_of(cfg.kernel.labels["then"]).index
        assert then_block not in spine
        assert cfg.entry.index in spine
        merge = cfg.block_of(cfg.kernel.labels["merge"]).index
        assert merge in spine

    def test_hoist_target_of_side_is_merge(self):
        cfg, pdom = analyze(DIAMOND)
        then_block = cfg.block_of(cfg.kernel.labels["then"]).index
        merge = cfg.block_of(cfg.kernel.labels["merge"]).index
        assert pdom.hoist_target(then_block) == merge

    def test_hoist_target_of_spine_block_is_itself(self):
        cfg, pdom = analyze(DIAMOND)
        assert pdom.hoist_target(cfg.entry.index) == cfg.entry.index


class TestLoop:
    def test_loop_body_on_spine(self, loop_kernel):
        cfg = ControlFlowGraph(loop_kernel)
        pdom = PostDominators(cfg)
        header = cfg.block_of(loop_kernel.labels["top"]).index
        # A do-while body always executes, so it postdominates entry.
        assert header in pdom.unconditional_blocks()

    def test_loop_reconvergence_is_exit_block(self, loop_kernel):
        cfg = ControlFlowGraph(loop_kernel)
        pdom = PostDominators(cfg)
        header = cfg.block_of(loop_kernel.labels["top"]).index
        reconv = pdom.reconvergence_block(header)
        assert cfg.blocks[reconv].start > loop_kernel.labels["top"]


class TestNested:
    SRC = """
.kernel k
    S2R r0, SR_TID
    SETP p0, r0, 16, LT
    @p0 BRA outer_then
    MOVI r1, 1
    BRA outer_merge
outer_then:
    SETP p1, r0, 8, LT
    @p1 BRA inner_then
    MOVI r1, 2
    BRA inner_merge
inner_then:
    MOVI r1, 3
inner_merge:
    IADDI r1, r1, 1
outer_merge:
    STG [r0], r1
    EXIT
"""

    def test_inner_reconverges_before_outer(self):
        cfg, pdom = analyze(self.SRC)
        labels = cfg.kernel.labels
        outer_then = cfg.block_of(labels["outer_then"]).index
        inner_merge = cfg.block_of(labels["inner_merge"]).index
        outer_merge = cfg.block_of(labels["outer_merge"]).index
        assert pdom.reconvergence_block(outer_then) == inner_merge
        assert pdom.reconvergence_block(cfg.entry.index) == outer_merge

    def test_inner_merge_hoists_to_outer_merge(self):
        cfg, pdom = analyze(self.SRC)
        labels = cfg.kernel.labels
        inner_merge = cfg.block_of(labels["inner_merge"]).index
        outer_merge = cfg.block_of(labels["outer_merge"]).index
        # inner_merge is still inside the outer divergence, so releases
        # there must hoist out to outer_merge.
        assert pdom.hoist_target(inner_merge) == outer_merge

    def test_ipdom_of_exit_block_is_none(self):
        cfg, pdom = analyze(self.SRC)
        exit_block = cfg.exit_blocks()[0]
        assert pdom.ipdom(exit_block.index) is None


class TestMultiExit:
    SRC = """
.kernel k
    S2R r0, SR_TID
    SETP p0, r0, 4, LT
    @p0 BRA other
    EXIT
other:
    EXIT
"""

    def test_no_reconvergence_when_both_sides_exit(self):
        cfg, pdom = analyze(self.SRC)
        assert pdom.reconvergence_block(cfg.entry.index) is None

    def test_hoist_target_none_when_paths_exit(self):
        cfg, pdom = analyze(self.SRC)
        other = cfg.block_of(cfg.kernel.labels["other"]).index
        assert pdom.hoist_target(other) is None
