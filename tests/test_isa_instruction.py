"""Instruction construction, validation, and formatting tests."""

import pytest

from repro.errors import IsaError
from repro.isa import CmpOp, Instruction, MemSpace, Opcode, PredGuard, Special
from repro.isa.opcodes import Unit, opcode_info


def iadd(dst=0, a=1, b=2):
    return Instruction(Opcode.IADD, dst=dst, srcs=(a, b))


class TestValidation:
    def test_simple_alu(self):
        inst = iadd()
        assert inst.writes() == 0
        assert inst.reads() == (1, 2)

    def test_wrong_source_count_rejected(self):
        with pytest.raises(IsaError):
            Instruction(Opcode.IADD, dst=0, srcs=(1,))

    def test_missing_destination_rejected(self):
        with pytest.raises(IsaError):
            Instruction(Opcode.IADD, srcs=(1, 2))

    def test_unexpected_destination_rejected(self):
        with pytest.raises(IsaError):
            Instruction(Opcode.STG, dst=0, srcs=(1, 2),
                        space=MemSpace.GLOBAL)

    def test_setp_requires_cmp(self):
        with pytest.raises(IsaError):
            Instruction(Opcode.SETP, pdst=0, srcs=(1, 2))

    def test_setp_requires_predicate_destination(self):
        with pytest.raises(IsaError):
            Instruction(Opcode.SETP, srcs=(1, 2), cmp=CmpOp.LT)

    def test_setp_immediate_form(self):
        inst = Instruction(Opcode.SETP, pdst=0, srcs=(1,), imm=5,
                           cmp=CmpOp.LT)
        assert inst.reads() == (1,)

    def test_branch_requires_target(self):
        with pytest.raises(IsaError):
            Instruction(Opcode.BRA)

    def test_branch_with_resolved_pc_is_valid(self):
        inst = Instruction(Opcode.BRA, target_pc=4)
        assert inst.is_branch

    def test_memory_requires_space(self):
        with pytest.raises(IsaError):
            Instruction(Opcode.LDG, dst=0, srcs=(1,))

    def test_s2r_requires_special(self):
        with pytest.raises(IsaError):
            Instruction(Opcode.S2R, dst=0)

    def test_negative_register_rejected(self):
        with pytest.raises(IsaError):
            Instruction(Opcode.MOV, dst=-1, srcs=(0,))
        with pytest.raises(IsaError):
            Instruction(Opcode.MOV, dst=0, srcs=(-2,))

    def test_immediate_stands_in_for_trailing_source(self):
        inst = Instruction(Opcode.IADDI, dst=0, srcs=(1,), imm=-1)
        assert inst.imm == -1


class TestQueries:
    def test_conditional_branch_detection(self):
        guarded = Instruction(Opcode.BRA, target="x",
                              guard=PredGuard(0))
        plain = Instruction(Opcode.BRA, target="x")
        assert guarded.is_conditional_branch
        assert not plain.is_conditional_branch

    def test_memory_classification(self):
        load = Instruction(Opcode.LDG, dst=0, srcs=(1,),
                           space=MemSpace.GLOBAL)
        assert load.is_memory
        assert not load.info.is_store
        store = Instruction(Opcode.STG, srcs=(1, 2),
                            space=MemSpace.GLOBAL)
        assert store.info.is_store

    def test_meta_classification(self):
        assert Instruction(Opcode.PIR).is_meta
        assert Instruction(Opcode.PBR).is_meta
        assert not iadd().is_meta

    def test_units(self):
        assert opcode_info(Opcode.IADD).unit is Unit.ALU
        assert opcode_info(Opcode.SQRT).unit is Unit.SFU
        assert opcode_info(Opcode.LDG).unit is Unit.MEM
        assert opcode_info(Opcode.BRA).unit is Unit.CTRL
        assert opcode_info(Opcode.PIR).unit is Unit.META


class TestFormatting:
    def test_alu_str(self):
        assert str(iadd()) == "IADD r0, r1, r2"

    def test_guard_prefix(self):
        inst = Instruction(Opcode.MOV, dst=0, srcs=(1,),
                           guard=PredGuard(2, negated=True))
        assert str(inst).startswith("@!p2 ")

    def test_load_format(self):
        inst = Instruction(Opcode.LDG, dst=3, srcs=(1,), offset=16,
                           space=MemSpace.GLOBAL)
        assert "[r1+0x10]" in str(inst)

    def test_store_format(self):
        inst = Instruction(Opcode.STG, srcs=(1, 2), space=MemSpace.GLOBAL)
        text = str(inst)
        assert text.index("[r1") < text.index("r2")

    def test_setp_format_contains_cmp(self):
        inst = Instruction(Opcode.SETP, pdst=1, srcs=(2,), imm=7,
                           cmp=CmpOp.GE)
        assert "GE" in str(inst)
        assert "p1" in str(inst)

    def test_s2r_format(self):
        inst = Instruction(Opcode.S2R, dst=0, special=Special.TID)
        assert "SR_TID" in str(inst)

    def test_branch_label(self):
        assert "loop" in str(Instruction(Opcode.BRA, target="loop"))


class TestOpcodeTable:
    def test_every_opcode_has_info(self):
        for opcode in Opcode:
            info = opcode_info(opcode)
            assert info.num_srcs in (0, 1, 2, 3)

    def test_stores_have_no_destination(self):
        for opcode in Opcode:
            info = opcode_info(opcode)
            if info.is_store:
                assert not info.has_dst

    def test_meta_opcodes_flagged(self):
        metas = [op for op in Opcode if opcode_info(op).is_meta]
        assert set(metas) == {Opcode.PIR, Opcode.PBR}
