"""Compiler bank assignment tests."""

from repro.compiler.banks import bank_histogram, bank_of, operand_bank_conflicts
from repro.isa import assemble


def test_bank_of_is_modulo():
    assert bank_of(0, 0, 4) == 0
    assert bank_of(5, 0, 4) == 1
    assert bank_of(5, 3, 4) == 0


def test_warp_skew_shifts_banks():
    banks = {bank_of(2, warp, 4) for warp in range(4)}
    assert banks == {0, 1, 2, 3}


def test_conflicts_counted_per_instruction():
    kernel = assemble(
        ".kernel k\nIADD r0, r1, r5\nIADD r0, r1, r2\nEXIT"
    )
    # r1 and r5 share bank 1; r1 and r2 do not conflict.
    assert operand_bank_conflicts(kernel, 4) == 1


def test_duplicate_register_not_a_conflict():
    kernel = assemble(".kernel k\nIADD r0, r1, r1\nEXIT")
    assert operand_bank_conflicts(kernel, 4) == 0


def test_histogram_covers_all_registers():
    kernel = assemble(
        ".kernel k\nMOVI r0, 1\nMOVI r1, 1\nMOVI r4, 1\nEXIT"
    )
    histogram = bank_histogram(kernel, 4)
    assert sum(histogram) == 3
    assert histogram[0] == 2  # r0 and r4


def test_histogram_bank_count():
    kernel = assemble(".kernel k\nMOVI r0, 1\nEXIT")
    assert len(bank_histogram(kernel, 8)) == 8
