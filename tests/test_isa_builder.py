"""KernelBuilder tests."""

import pytest

from repro.errors import IsaError
from repro.isa import CmpOp, KernelBuilder, Opcode, Special


def test_minimal_kernel():
    b = KernelBuilder("k")
    b.movi(0, 1)
    b.exit()
    kernel = b.build()
    assert kernel.name == "k"
    assert len(kernel) == 2
    assert kernel.num_regs == 1


def test_all_alu_methods_emit_expected_opcodes():
    b = KernelBuilder("k")
    b.mov(0, 1)
    b.movi(0, 5)
    b.iadd(0, 1, 2)
    b.iaddi(0, 1, -1)
    b.isub(0, 1, 2)
    b.imul(0, 1, 2)
    b.imad(0, 1, 2, 3)
    b.and_(0, 1, 2)
    b.or_(0, 1, 2)
    b.xor(0, 1, 2)
    b.shl(0, 1, 3)
    b.shr(0, 1, 3)
    b.imin(0, 1, 2)
    b.imax(0, 1, 2)
    b.sel(0, 1, 2, 3)
    b.fadd(0, 1, 2)
    b.fmul(0, 1, 2)
    b.ffma(0, 1, 2, 3)
    b.rcp(0, 1)
    b.sqrt(0, 1)
    b.exit()
    kernel = b.build()
    expected = [
        Opcode.MOV, Opcode.MOVI, Opcode.IADD, Opcode.IADDI, Opcode.ISUB,
        Opcode.IMUL, Opcode.IMAD, Opcode.AND, Opcode.OR, Opcode.XOR,
        Opcode.SHL, Opcode.SHR, Opcode.IMIN, Opcode.IMAX, Opcode.SEL,
        Opcode.FADD, Opcode.FMUL, Opcode.FFMA, Opcode.RCP, Opcode.SQRT,
        Opcode.EXIT,
    ]
    assert [inst.opcode for inst in kernel.instructions] == expected


def test_setp_requires_exactly_one_of_src2_imm():
    b = KernelBuilder("k")
    with pytest.raises(IsaError):
        b.setp(0, 1, CmpOp.LT)
    with pytest.raises(IsaError):
        b.setp(0, 1, CmpOp.LT, src2=2, imm=3)


def test_setp_register_and_immediate_forms():
    b = KernelBuilder("k")
    reg_form = b.setp(0, 1, CmpOp.LT, src2=2)
    imm_form = b.setp(1, 1, CmpOp.GE, imm=4)
    assert reg_form.srcs == (1, 2)
    assert imm_form.srcs == (1,) and imm_form.imm == 4


def test_guard_keyword_on_any_instruction():
    b = KernelBuilder("k")
    inst = b.iadd(0, 1, 2, pred=3, negated=True)
    assert inst.guard.preg == 3
    assert inst.guard.negated


def test_labels_and_branches():
    b = KernelBuilder("k")
    top = b.label("top")
    b.iaddi(0, 0, 1)
    b.bra(top, pred=0)
    b.exit()
    kernel = b.build()
    assert kernel.instructions[1].target_pc == 0


def test_auto_label_names_unique():
    b = KernelBuilder("k")
    first = b.label()
    b.nop()
    second = b.label()
    b.exit()
    assert first != second


def test_fresh_label_place_later():
    b = KernelBuilder("k")
    end = b.fresh_label()
    b.bra(end)
    b.movi(0, 1)
    b.place(end)
    b.exit()
    kernel = b.build()
    assert kernel.instructions[0].target_pc == 2


def test_duplicate_label_rejected():
    b = KernelBuilder("k")
    b.label("x")
    with pytest.raises(IsaError):
        b.label("x")


def test_build_twice_rejected():
    b = KernelBuilder("k")
    b.exit()
    b.build()
    with pytest.raises(IsaError):
        b.emit(b.exit())


def test_memory_methods():
    b = KernelBuilder("k")
    b.s2r(0, Special.TID)
    load = b.ldg(1, addr=0, offset=8)
    store = b.sts(addr=0, value=1, offset=4)
    b.exit()
    assert load.offset == 8
    assert store.srcs == (0, 1)
    kernel = b.build()
    kernel.validate()
