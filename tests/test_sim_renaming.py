"""Renaming table tests: flags mode, redefine mode, spill support."""

import pytest

from repro.arch import GPUConfig
from repro.errors import RenamingError
from repro.sim.regfile import PhysicalRegisterFile
from repro.sim.renaming import RenamingTable
from repro.sim.stats import SimStats


def make_table(mode="flags", threshold=0, config=None, tracer=None):
    config = config or GPUConfig.renamed()
    stats = SimStats()
    regfile = PhysicalRegisterFile(config, stats)
    table = RenamingTable(
        config, regfile, stats, threshold=threshold, mode=mode,
        tracer=tracer,
    )
    return table, regfile, stats


class TestFlagsMode:
    def test_write_allocates_once(self):
        table, regfile, _ = make_table()
        table.launch_warp(0, cta_id=0, now=0)
        first, _ = table.write(0, 5, now=0)
        second, _ = table.write(0, 5, now=1)
        assert first == second
        assert regfile.live_count == 1

    def test_read_returns_mapping(self):
        table, _, _ = make_table()
        table.launch_warp(0, 0, 0)
        phys, _ = table.write(0, 5, 0)
        assert table.read(0, 5, 1) == phys

    def test_unmapped_read_returns_none(self):
        table, regfile, _ = make_table()
        table.launch_warp(0, 0, 0)
        assert table.read(0, 9, 0) is None
        assert regfile.live_count == 0

    def test_release_frees_register(self):
        table, regfile, _ = make_table()
        table.launch_warp(0, 0, 0)
        table.write(0, 5, 0)
        assert table.release(0, 5, 1)
        assert regfile.live_count == 0
        assert not table.is_mapped(0, 5)

    def test_release_unmapped_is_noop(self):
        table, _, stats = make_table()
        table.launch_warp(0, 0, 0)
        assert not table.release(0, 5, 0)
        assert stats.wasted_releases == 1

    def test_rewrite_after_release_allocates_fresh(self):
        table, regfile, _ = make_table()
        table.launch_warp(0, 0, 0)
        table.write(0, 5, 0)
        table.release(0, 5, 1)
        table.write(0, 5, 2)
        assert regfile.live_count == 1

    def test_bank_follows_compiler_assignment(self):
        table, regfile, _ = make_table()
        table.launch_warp(3, 0, 0)
        phys, _ = table.write(3, 5, 0)
        assert regfile.bank_of(phys) == (5 + 3) % 4

    def test_cross_warp_sharing(self):
        """Warp 1 reuses the register warp 0 released (Fig. 2b)."""
        table, regfile, _ = make_table()
        table.launch_warp(0, 0, 0)
        table.launch_warp(4, 0, 0)  # same bank skew as warp 0
        phys0, _ = table.write(0, 5, 0)
        table.release(0, 5, 1)
        phys1, _ = table.write(4, 1, 2)  # (1+4)%4 == (5+0)%4
        assert phys1 == phys0

    def test_finish_warp_frees_everything(self):
        table, regfile, _ = make_table()
        table.launch_warp(0, 0, 0)
        table.write(0, 1, 0)
        table.write(0, 2, 0)
        table.finish_warp(0, 1)
        assert regfile.live_count == 0


class TestThreshold:
    def test_exempt_registers_pinned_at_launch(self):
        table, regfile, _ = make_table(threshold=3)
        table.launch_warp(0, 0, 0)
        assert regfile.live_count == 3
        for arch in range(3):
            assert table.read(0, arch, 0) is not None

    def test_exempt_write_reuses_pinned(self):
        table, regfile, _ = make_table(threshold=2)
        table.launch_warp(0, 0, 0)
        phys, penalty = table.write(0, 1, 0)
        assert penalty == 0
        assert regfile.live_count == 2

    def test_exempt_release_is_noop(self):
        table, regfile, _ = make_table(threshold=2)
        table.launch_warp(0, 0, 0)
        assert not table.release(0, 1, 0)
        assert regfile.live_count == 2

    def test_exempt_reads_bypass_table_stats(self):
        table, _, stats = make_table(threshold=2)
        table.launch_warp(0, 0, 0)
        before = stats.renaming_reads
        table.read(0, 0, 0)
        assert stats.renaming_reads == before


class TestRedefineMode:
    def test_release_ignored(self):
        table, regfile, _ = make_table(mode="redefine")
        table.launch_warp(0, 0, 0)
        table.write(0, 5, 0)
        assert not table.release(0, 5, 1)
        assert regfile.live_count == 1

    def test_redefinition_recycles(self):
        table, regfile, _ = make_table(mode="redefine")
        table.launch_warp(0, 0, 0)
        table.write(0, 5, 0)
        table.write(0, 5, 1)
        assert regfile.live_count == 1

    def test_unknown_mode_rejected(self):
        with pytest.raises(RenamingError):
            make_table(mode="bogus")


class TestCtaCounters:
    def test_current_and_cumulative_assignment(self):
        table, _, _ = make_table()
        table.launch_warp(0, cta_id=7, now=0)
        table.write(0, 1, 0)
        table.write(0, 2, 0)
        table.release(0, 1, 1)
        assert table.cta_allocated[7] == 1
        assert table.cta_assigned[7] == 2  # cumulative (Section 8.1)
        table.write(0, 1, 2)  # re-map a previously assigned register
        assert table.cta_assigned[7] == 2  # still cumulative-unique

    def test_forget_cta(self):
        table, _, _ = make_table()
        table.launch_warp(0, cta_id=7, now=0)
        table.write(0, 1, 0)
        table.finish_warp(0, 1)
        table.forget_cta(7)
        assert 7 not in table.cta_allocated
        assert 7 not in table.cta_assigned


class TestSpillSupport:
    def test_spill_frees_and_fill_restores(self):
        table, regfile, _ = make_table()
        table.launch_warp(0, 0, 0)
        table.write(0, 1, 0)
        table.write(0, 2, 0)
        regs = table.spill_warp(0, 1)
        assert regs == (1, 2)
        assert regfile.live_count == 0
        assert table.fill_warp(0, regs, 2)
        assert regfile.live_count == 2

    def test_fill_is_all_or_nothing(self):
        config = GPUConfig.shrunk(0.5)
        table, regfile, _ = make_table(config=config)
        table.launch_warp(0, 0, 0)
        table.write(0, 1, 0)
        regs = table.spill_warp(0, 0)
        # Exhaust the file so the fill cannot complete.
        while regfile.allocate(0, 0) is not None:
            pass
        assert not table.fill_warp(0, regs, 1)
        assert table.mapped_count(0) == 0


class TestTracer:
    def test_def_and_release_events(self):
        events = []

        def tracer(slot, arch, event, cycle):
            events.append((slot, arch, event, cycle))

        table, _, _ = make_table(tracer=tracer)
        table.launch_warp(0, 0, 0)
        table.write(0, 5, 3)
        table.write(0, 5, 4)  # in-place rewrite still traces a def
        table.release(0, 5, 9)
        assert (0, 5, "def", 3) in events
        assert (0, 5, "def", 4) in events
        assert (0, 5, "release", 9) in events


class TestBankPreservation:
    def test_bank_agnostic_uses_least_occupied(self):
        config = GPUConfig.renamed(bank_preserving_renaming=False)
        table, regfile, _ = make_table(config=config)
        table.launch_warp(0, 0, 0)
        # Pre-load bank 0 heavily via direct allocation.
        for _ in range(100):
            regfile.allocate(0, 0)
        phys, _ = table.write(0, 0, 0)  # compiler bank would be 0
        assert regfile.bank_of(phys) != 0

    def test_bank_preserving_is_default(self):
        table, regfile, _ = make_table()
        table.launch_warp(1, 0, 0)
        phys, _ = table.write(1, 6, 0)
        assert regfile.bank_of(phys) == (6 + 1) % 4
