"""Baseline comparison flows: compiler spill and hardware-only."""

from repro.arch import GPUConfig
from repro.baselines import (
    run_compiler_spill,
    run_hardware_only,
    spill_register_budget,
)
from repro.compiler import compile_kernel
from repro.launch import LaunchConfig
from repro.sim import simulate
from repro.workloads import get_workload


class TestSpillBudget:
    def test_budget_formula(self):
        workload = get_workload("hotspot", scale=0.5)
        config = GPUConfig.baseline(regfile_bytes=64 * 1024)
        budget = spill_register_budget(
            workload.kernel, workload.launch, config
        )
        # 512 physical / (3 CTAs x 8 warps) = 21 registers.
        assert budget == 21

    def test_fitting_benchmark_not_spilled(self):
        workload = get_workload("vectoradd", scale=0.5)
        result = run_compiler_spill(
            workload.kernel, workload.launch, max_ctas_per_sm_sim=1
        )
        assert not result.spilled
        assert result.simulation.stats.ctas_completed >= 1

    def test_pressured_benchmark_spills_and_slows(self):
        workload = get_workload("hotspot", scale=0.5)
        base = simulate(
            workload.kernel.clone(), workload.launch,
            GPUConfig.baseline(), mode="baseline", max_ctas_per_sm_sim=1,
        )
        spilled = run_compiler_spill(
            workload.kernel, workload.launch, max_ctas_per_sm_sim=1
        )
        assert spilled.spilled
        assert spilled.simulation.stats.cycles > base.stats.cycles
        assert (
            spilled.simulation.stats.memory_instructions
            > base.stats.memory_instructions
        )

    def test_spilled_run_uses_shrunk_config(self):
        workload = get_workload("hotspot", scale=0.5)
        result = run_compiler_spill(
            workload.kernel, workload.launch, max_ctas_per_sm_sim=1
        )
        config = result.simulation.config
        assert config.regfile_bytes == 64 * 1024
        assert not config.renaming_enabled


class TestHardwareOnly:
    def test_runs_in_redefine_mode(self):
        workload = get_workload("matrixmul", scale=0.5)
        result = run_hardware_only(
            workload.kernel, workload.launch, max_ctas_per_sm_sim=1
        )
        assert result.mode == "redefine"
        assert result.stats.ctas_completed >= 1

    def test_saves_less_than_compiler_directed(self):
        workload = get_workload("matrixmul", scale=0.5)
        launch = workload.launch
        config = GPUConfig.renamed()

        hw_only = run_hardware_only(
            workload.kernel, launch, config, max_ctas_per_sm_sim=1
        )
        compiled = compile_kernel(workload.kernel, launch, config)
        ours = simulate(
            compiled.kernel, launch, config, mode="flags",
            threshold=compiled.renaming_threshold, max_ctas_per_sm_sim=1,
        )
        assert (
            ours.stats.max_live_registers
            <= hw_only.stats.max_live_registers
        )

    def test_input_kernel_not_mutated(self):
        workload = get_workload("bfs", scale=0.5)
        before = len(workload.kernel)
        run_hardware_only(
            workload.kernel, workload.launch, max_ctas_per_sm_sim=1
        )
        assert len(workload.kernel) == before
