"""Struct-of-arrays lane engine equivalence (``REPRO_VECTOR_LANES``).

The vector engine replaces the per-register ``dict[int, ndarray]``
warp state with one contiguous 2D register bank per warp and in-place
masked writes; ``REPRO_VECTOR_LANES=0`` keeps the seed dict layout as
the strict reference. The engine must be invisible: every
:class:`SimStats` field except the ``ticks_executed`` /
``skipped_cycles`` diagnostics — and the final global-memory image —
must come out exactly equal on both layouts, in every register mode,
composed with either decode path and either tick engine, serial or
parallel. These tests pin that grid, the aliasing/mask edge cases the
in-place writes are most likely to get wrong, the
:class:`VectorWarp` storage invariants, and the flag plumbing
(including the result-cache fingerprint split).
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.arch import GPUConfig
from repro.cache.fingerprint import engine_fingerprint
from repro.compiler import compile_kernel
from repro.isa import CmpOp, KernelBuilder, Special
from repro.launch import LaunchConfig
from repro.sim.core import SMCore
from repro.sim.gpu import GPU, simulate
from repro.sim.warp import VectorWarp, Warp
from repro.workloads.suite import get_workload

MODES = ("baseline", "flags", "shrink")
SHRINK_FRACTION = 0.2
#: Engine diagnostics: the only fields allowed to differ across
#: engines (see test_cycle_skip.py).
DIAGNOSTICS = frozenset({"ticks_executed", "skipped_cycles"})
#: Full (vector, decode-cache, cycle-skip) engine grid.
FULL_GRID = tuple(
    (vec, cache, skip)
    for vec in ("1", "0")
    for cache in ("1", "0")
    for skip in ("1", "0")
)


def _comparable(result) -> dict:
    return {
        name: value
        for name, value in dataclasses.asdict(result.stats).items()
        if name not in DIAGNOSTICS
    }


def _simulate(name, mode, scale=0.5, fraction=SHRINK_FRACTION, waves=1,
              **kwargs):
    workload = get_workload(name, scale=scale)
    opts = dict(
        max_ctas_per_sm_sim=waves * workload.table1.conc_ctas_per_sm
    )
    opts.update(kwargs)
    if mode in ("flags", "shrink"):
        config = (
            GPUConfig.shrunk(fraction)
            if mode == "shrink"
            else GPUConfig.renamed()
        )
        compiled = compile_kernel(workload.kernel, workload.launch, config)
        return simulate(
            compiled.kernel, workload.launch, config, mode="flags",
            threshold=compiled.renaming_threshold, **opts,
        )
    return simulate(
        workload.kernel.clone(), workload.launch, GPUConfig.baseline(),
        mode="baseline", **opts,
    )


class TestEquivalenceGrid:
    """vector x decode-cache x cycle-skip engine grid."""

    def test_flags_serial_grid_is_bit_identical(self, monkeypatch):
        """Full 2x2x2 grid on the renamed flow — the mode where the
        vector engine binds its deeply inlined issue/tick paths."""
        runs = {}
        for vec, cache, skip in FULL_GRID:
            monkeypatch.setenv("REPRO_VECTOR_LANES", vec)
            monkeypatch.setenv("REPRO_DECODE_CACHE", cache)
            monkeypatch.setenv("REPRO_CYCLE_SKIP", skip)
            runs[(vec, cache, skip)] = _comparable(
                _simulate("matrixmul", "flags")
            )
        reference = runs[("0", "1", "1")]
        for cell, stats in runs.items():
            assert stats == reference, f"grid cell {cell} diverged"

    @pytest.mark.parametrize("mode", ("baseline", "shrink"))
    def test_other_modes_vector_grid_is_bit_identical(
        self, mode, monkeypatch
    ):
        runs = {}
        for vec in ("1", "0"):
            for cache in ("1", "0"):
                monkeypatch.setenv("REPRO_VECTOR_LANES", vec)
                monkeypatch.setenv("REPRO_DECODE_CACHE", cache)
                runs[(vec, cache)] = _comparable(_simulate("matrixmul", mode))
        reference = runs[("0", "1")]
        for cell, stats in runs.items():
            assert stats == reference, f"grid cell {cell} diverged"

    def test_parallel_matches_serial_reference(self, monkeypatch):
        """The process-pool engine (workers re-resolve the env flag
        when rebuilding cores from CoreJob specs) must agree with the
        serial reference cell by cell."""
        reference = None
        for vec in ("1", "0"):
            monkeypatch.setenv("REPRO_VECTOR_LANES", vec)
            stats = _comparable(
                _simulate("matrixmul", "flags", sim_sms=2,
                          max_ctas_per_sm_sim=2, jobs=2)
            )
            if reference is None:
                reference = _comparable(
                    _simulate("matrixmul", "flags", sim_sms=2,
                              max_ctas_per_sm_sim=2)
                )
            assert stats == reference, f"vector={vec} parallel diverged"

    def test_spill_path_is_bit_identical(self, monkeypatch):
        """Deep shrink with spill/fill churn: warps round-trip their
        registers through memory, the harshest test of the permanent
        row views."""
        runs = {}
        for vec in ("1", "0"):
            monkeypatch.setenv("REPRO_VECTOR_LANES", vec)
            result = _simulate("matrixmul", "shrink", scale=1.0,
                               fraction=0.18, waves=2)
            runs[vec] = (_comparable(result), result.stats.spill_events)
        assert runs["1"][1] > 0, "sample must actually exercise spills"
        assert runs["1"][0] == runs["0"][0]


def _alias_kernel():
    """IADD R2, R2, R2 — destination row aliases both source rows, so
    an in-place write that clobbers its own inputs mid-ufunc would
    corrupt the result."""
    b = KernelBuilder("alias")
    b.s2r(0, Special.TID)
    b.shl(1, 0, 3)      # R1 = tid * 8 (store address)
    b.iadd(2, 0, 0)     # R2 = 2 * tid
    b.iadd(2, 2, 2)     # R2 = R2 + R2, all operands one register
    b.iadd(2, 2, 2)
    b.stg(addr=1, value=2)
    b.exit()
    return b.build()


def _guarded_setp_kernel():
    """A guarded SETP writes its predicate on a partial mask; the
    untouched lanes must keep their default (False) and gate a later
    guarded write accordingly."""
    b = KernelBuilder("guarded-setp")
    b.s2r(0, Special.TID)
    b.setp(0, 0, CmpOp.LT, imm=16)          # P0 = tid < 16
    b.setp(1, 0, CmpOp.GE, imm=8, pred=0)   # P1 written only where P0
    b.movi(2, 7)
    b.movi(2, 42, pred=1)                   # only lanes 8..15 take 42
    b.shl(3, 0, 3)
    b.stg(addr=3, value=2)
    b.exit()
    return b.build()


def _dead_store_kernel():
    """A store whose guard turns every lane off must not touch memory,
    and a register written but never read must stay inert."""
    b = KernelBuilder("dead-store")
    b.s2r(0, Special.TID)
    b.setp(0, 0, CmpOp.LT, imm=0)   # always false: tid >= 0
    b.shl(1, 0, 3)
    b.movi(2, 99)
    b.stg(addr=1, value=2, pred=0)  # all lanes off
    b.movi(3, 123)                  # never read again
    b.stg(addr=1, value=0)          # live store: gmem[tid*8] = tid
    b.exit()
    return b.build()


MASK_EDGE_KERNELS = {
    "alias": _alias_kernel,
    "guarded-setp": _guarded_setp_kernel,
    "dead-store": _dead_store_kernel,
}


def _run_kernel(kernel, mode):
    launch = LaunchConfig(1, 32, conc_ctas_per_sm=1)
    if mode == "flags":
        config = GPUConfig.renamed()
        compiled = compile_kernel(kernel, launch, config)
        gpu = GPU(config, compiled.kernel, launch, mode="flags",
                  threshold=compiled.renaming_threshold, sim_sms=1)
    else:
        gpu = GPU(GPUConfig.baseline(), kernel, launch, mode="baseline",
                  sim_sms=1)
    result = gpu.run()
    return result, gpu.gmem.image()


class TestMaskEdgeWorkloads:
    """Aliasing and mask edge cases, stats + memory image identical."""

    @pytest.mark.parametrize("mode", ("baseline", "flags"))
    @pytest.mark.parametrize("name", sorted(MASK_EDGE_KERNELS))
    def test_vector_matches_reference(self, name, mode, monkeypatch):
        runs, images = {}, {}
        for vec in ("1", "0"):
            monkeypatch.setenv("REPRO_VECTOR_LANES", vec)
            result, image = _run_kernel(MASK_EDGE_KERNELS[name](), mode)
            runs[vec] = _comparable(result)
            images[vec] = image
        assert runs["1"] == runs["0"], f"{name}/{mode} stats diverged"
        assert images["1"] == images["0"], f"{name}/{mode} memory diverged"

    def test_alias_values(self, monkeypatch):
        monkeypatch.setenv("REPRO_VECTOR_LANES", "1")
        _, image = _run_kernel(_alias_kernel(), "baseline")
        for tid in range(1, 32):
            assert image[tid * 8] == 8 * tid

    def test_guarded_setp_values(self, monkeypatch):
        monkeypatch.setenv("REPRO_VECTOR_LANES", "1")
        _, image = _run_kernel(_guarded_setp_kernel(), "baseline")
        for tid in range(1, 32):
            expected = 42 if 8 <= tid < 16 else 7
            assert image[tid * 8] == expected, tid

    def test_dead_store_writes_nothing(self, monkeypatch):
        monkeypatch.setenv("REPRO_VECTOR_LANES", "1")
        _, image = _run_kernel(_dead_store_kernel(), "baseline")
        assert 99 not in image.values()
        for tid in range(1, 32):
            assert image[tid * 8] == tid


class _FakeCta:
    index = 0


class TestVectorWarp:
    """Storage invariants the vector execute path relies on."""

    def _warp(self, num_regs=4, num_preds=2):
        return VectorWarp(slot=0, cta=_FakeCta(), warp_in_cta=0,
                          warp_size=32, active_threads=32,
                          num_regs=num_regs, num_preds=num_preds)

    def test_rows_default_to_zero(self):
        warp = self._warp()
        assert (warp.reg(3) == 0).all()
        assert not warp.pred(1).any()

    def test_masked_write_mutates_row_in_place(self):
        warp = self._warp()
        row = warp.reg(1)
        mask = np.zeros(32, dtype=bool)
        mask[:8] = True
        warp.write_reg(1, np.full(32, 5, dtype=np.int64), mask)
        assert warp.reg(1) is row  # the view is permanent
        assert (row[:8] == 5).all()
        assert (row[8:] == 0).all()  # inactive lanes untouched

    def test_masked_pred_write(self):
        warp = self._warp()
        mask = np.zeros(32, dtype=bool)
        mask[4] = True
        warp.write_pred(0, np.ones(32, dtype=bool), mask)
        assert warp.pred(0)[4]
        assert warp.pred(0).sum() == 1

    def test_growth_preserves_values_and_clears_op_cache(self):
        warp = self._warp(num_regs=2)
        values = np.arange(32, dtype=np.int64)
        warp.write_reg(1, values, np.ones(32, dtype=bool))
        warp._vec_ops[0] = object()  # stale operand-row binding
        assert (warp.reg(10) == 0).all()  # forces bank growth
        assert warp._vec_ops == {}  # stale views unreachable
        assert (warp.reg(1) == values).all()

    def test_pred_growth_clears_op_cache(self):
        warp = self._warp(num_preds=1)
        warp._vec_ops[0] = object()
        warp.pred(5)
        assert warp._vec_ops == {}

    def test_dict_layout_is_poisoned(self):
        warp = self._warp()
        assert warp.regs is None
        assert warp.preds is None


class TestPlumbing:
    def _core(self, policy="two_level"):
        workload = get_workload("matrixmul", scale=0.5)
        config = GPUConfig.renamed(scheduler_policy=policy)
        compiled = compile_kernel(workload.kernel, workload.launch, config)
        return SMCore(config, compiled.kernel, workload.launch,
                      mode="flags", threshold=compiled.renaming_threshold)

    def test_env_flag_selects_engine(self, monkeypatch):
        # The vector paths bind only on top of the decode cache, and
        # batching binds on top of the vector engine (test_warp_batch
        # covers that plumbing) — pin the former on and the latter off
        # so this tests the vector binding alone, whatever env the
        # suite runs under.
        monkeypatch.setenv("REPRO_DECODE_CACHE", "1")
        monkeypatch.setenv("REPRO_WARP_BATCH", "0")
        monkeypatch.setenv("REPRO_VECTOR_LANES", "0")
        core = self._core()
        assert core.vector_lanes is False
        assert core._try_issue.__func__ is SMCore._try_issue
        assert core.tick.__func__ is SMCore.tick
        monkeypatch.setenv("REPRO_VECTOR_LANES", "1")
        core = self._core()
        assert core.vector_lanes is True
        assert core._try_issue.__func__ is SMCore._try_issue_vector
        assert core.tick.__func__ is SMCore._tick_vector

    def test_default_is_vector(self, monkeypatch):
        monkeypatch.delenv("REPRO_VECTOR_LANES", raising=False)
        assert self._core().vector_lanes is True

    def test_gto_keeps_reference_tick(self, monkeypatch):
        """The inlined tick only covers the rotation policies; gto must
        fall back to the generic tick (but keep the vector issue)."""
        monkeypatch.setenv("REPRO_DECODE_CACHE", "1")
        monkeypatch.setenv("REPRO_WARP_BATCH", "0")
        monkeypatch.setenv("REPRO_VECTOR_LANES", "1")
        core = self._core(policy="gto")
        assert core._try_issue.__func__ is SMCore._try_issue_vector
        assert core.tick.__func__ is SMCore.tick

    def test_warp_class_follows_flag(self, monkeypatch, straight_kernel):
        launch = LaunchConfig(1, 32, conc_ctas_per_sm=1)
        for vec, cls in (("1", VectorWarp), ("0", Warp)):
            monkeypatch.setenv("REPRO_VECTOR_LANES", vec)
            core = SMCore(GPUConfig.baseline(), straight_kernel.clone(),
                          launch, mode="baseline")
            core.cta_queue = [0]
            core.tick()
            assert core.resident, "tick 0 must launch the CTA"
            for cta in core.resident:
                assert cta.warps
                for warp in cta.warps:
                    assert type(warp) is cls

    def test_engine_fingerprint_splits_cache_key(self, monkeypatch):
        monkeypatch.setenv("REPRO_VECTOR_LANES", "1")
        vector = engine_fingerprint()
        monkeypatch.setenv("REPRO_VECTOR_LANES", "0")
        scalar = engine_fingerprint()
        assert vector != scalar
